#!/usr/bin/env python3
"""IoT device on WiFi reaching the 5GC through an N3IWF (§2.2).

The device registers with EAP-AKA' over IKEv2, brings up an IPsec
child SA for its PDU session, and exchanges data — no licensed
spectrum or base station involved.

    python examples/non3gpp_access.py
"""

from repro.cp import FiveGCore, ProcedureRunner, SystemConfig
from repro.net import Direction, FiveTuple, Packet, int_to_ip
from repro.sim import Environment


def main() -> None:
    env = Environment()
    core = FiveGCore(env, SystemConfig.l25gc())
    n3iwf = core.add_n3iwf(100)
    runner = ProcedureRunner(core)
    device = core.add_ue("imsi-208930000042001")  # a WiFi sensor
    detail = {}

    def scenario():
        result = yield from runner.register_ue_non3gpp(device, n3iwf_id=100)
        print(f"EAP-AKA' registration : {result.duration * 1e3:6.1f} ms "
              f"(signalling SA spi={result.detail['signalling_spi']:#x})")
        result = yield from runner.establish_session_non3gpp(device)
        detail.update(result.detail)
        print(f"PDU session over IPsec: {result.duration * 1e3:6.1f} ms "
              f"(child SA spi={result.detail['child_spi']:#x}, "
              f"IP {int_to_ip(result.detail['ue_ip'])})")

    env.process(scenario())
    env.run()

    # Downlink telemetry command to the sensor.
    core.inject_downlink(Packet(
        direction=Direction.DOWNLINK,
        size=120,
        flow=FiveTuple(src_ip=0x08080808, dst_ip=detail["ue_ip"],
                       src_port=8883, dst_port=40000),
        created_at=env.now,
    ))
    # Uplink reading from the sensor through the tunnel.
    core.inject_uplink(Packet(
        direction=Direction.UPLINK,
        size=90,
        teid=detail["ul_teid"],
        flow=FiveTuple(src_ip=detail["ue_ip"], dst_ip=0x08080808,
                       src_port=40000, dst_port=8883),
    ))
    env.run()
    received = device.received[0]
    print(f"downlink delivered    : {received.size} B on the wire "
          f"(ESP spi={received.meta['esp_spi']:#x}, "
          f"{received.latency * 1e3:.1f} ms over WiFi)")
    print(f"uplink at DN          : {len(core.dn_received)} packet(s)")
    print(f"N3IWF state           : {n3iwf}")


if __name__ == "__main__":
    main()
