#!/usr/bin/env python3
"""Resiliency demo: kill the primary 5GC mid-handover and watch it
recover without the UE re-attaching (§3.5 / §5.5).

    python examples/failover_demo.py
"""

from repro.cp.nfs import AMF, SMF
from repro.experiments.fig15 import control_plane_failover
from repro.net import Direction, PacketKind
from repro.resiliency import PacketLogger, ResiliencyFramework
from repro.sim import MS, Environment


def framework_walkthrough() -> None:
    """Drive the machinery directly: log, sync, fail, replay."""
    env = Environment()
    amf, smf = AMF(), SMF()
    framework = ResiliencyFramework(
        env, {"amf": amf, "smf": smf}, sync_period=5 * MS
    )
    framework.start()
    outcome = {}

    def scenario():
        # Simulate 30 UE events flowing through the LB.
        for index in range(30):
            amf.context(f"imsi-{index:03d}").bump()
            framework.log_message(
                f"event-{index}", Direction.UPLINK, PacketKind.CONTROL
            )
            yield from framework.commit_event()  # output commit (~5 us)
            yield env.timeout(2 * MS)
        framework.fail_primary()
        report = yield from framework.run_failover()
        outcome["report"] = report

    env.process(scenario())
    env.run(until=0.5)
    report = outcome["report"]
    print("--- framework walkthrough ---")
    print(f"events committed      : {framework.events_committed}")
    print(f"remote synced counter : {framework.remote.synced_counter}")
    print(f"detection latency     : "
          f"{(report.detected_at - report.failed_at) * 1e3:.2f} ms")
    print(f"total outage          : {report.outage * 1e3:.2f} ms")
    print(f"messages replayed     : {report.replayed_messages} "
          "(only those after the last acked checkpoint)")
    # The local replicas never burned CPU while frozen.
    for name, replica in framework.local_replicas.items():
        assert replica.cpu_while_frozen == 0.0
        print(f"replica '{name}'       : {replica.syncs} syncs, "
              "0 CPU cycles while frozen")


def handover_failure_comparison() -> None:
    """§5.5.1's headline: handover completion with a failure midway."""
    result = control_plane_failover()
    print("\n--- handover + failure (control plane) ---")
    print(f"L25GC handover, no failure : "
          f"{result.l25gc_ho_without_failure_s * 1e3:6.1f} ms")
    print(f"L25GC handover, failure    : "
          f"{result.l25gc_ho_with_failure_s * 1e3:6.1f} ms "
          "(replica unfrozen, packets replayed)")
    print(f"3GPP re-attach alternative : "
          f"{result.reattach_ho_with_failure_s * 1e3:6.1f} ms "
          "(fresh registration + session)")


if __name__ == "__main__":
    framework_walkthrough()
    handover_failure_comparison()
