#!/usr/bin/env python3
"""Export the Fig 13/14 RTT time series as CSV for plotting.

The paper's artifact ships plotting scripts for its result figures;
this produces the equivalent input data: per-packet (send time, RTT)
series for the paging and handover events, both systems.

    python examples/export_timeseries.py [output-dir]

Plot them with anything, e.g. gnuplot:
    plot 'fig13_free5gc.csv' using 1:2 with points
"""

import csv
import pathlib
import sys

from repro.cp.core5g import SystemConfig
from repro.experiments.fig13 import paging_data_plane
from repro.experiments.fig14 import handover_data_plane


def export(series, path: pathlib.Path) -> int:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["send_time_s", "rtt_ms"])
        for sent_at, rtt in series.timeline():
            writer.writerow([f"{sent_at:.6f}", f"{rtt * 1e3:.3f}"])
    return len(series)


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    out_dir.mkdir(parents=True, exist_ok=True)

    for config in (SystemConfig.free5gc(), SystemConfig.l25gc()):
        observation = paging_data_plane(config)
        path = out_dir / f"fig13_{config.name}.csv"
        count = export(observation.series, path)
        print(f"{path}: {count} samples "
              f"(paging {observation.paging_time_s * 1e3:.1f} ms)")

    for config in (SystemConfig.free5gc(), SystemConfig.l25gc()):
        observation = handover_data_plane(config, concurrent_sessions=1)
        path = out_dir / f"fig14_{config.name}.csv"
        count = export(observation.series, path)
        print(f"{path}: {count} samples "
              f"(handover {observation.handover_time_s * 1e3:.1f} ms)")


if __name__ == "__main__":
    main()
