#!/usr/bin/env python3
"""Quickstart: bring up an L25GC core, attach a UE, and push packets.

Runs the full UE lifecycle — registration, PDU session establishment,
uplink/downlink traffic, idle transition, paging — on the simulated
shared-memory core, and prints what happened at each step.

    python examples/quickstart.py

Set ``REPRO_TRACE=/path/to/trace.json`` to run the same scenario under
:mod:`repro.obs` tracing and write a Chrome-trace file you can open in
``chrome://tracing`` or https://ui.perfetto.dev (CI's obs smoke job
does exactly this).
"""

import os

from repro import obs
from repro.cp import FiveGCore, ProcedureRunner, SystemConfig
from repro.net import Direction, FiveTuple, Packet, int_to_ip
from repro.sim import Environment


def main() -> None:
    env = Environment()
    core = FiveGCore(env, SystemConfig.l25gc())
    runner = ProcedureRunner(core)
    ue = core.add_ue("imsi-208930000000003")
    trace_path = os.environ.get("REPRO_TRACE")
    tracer = obs.enable(env) if trace_path else None

    def scenario():
        # 1. Register the UE (authentication, security mode, policy).
        result = yield from runner.register_ue(ue, gnb_id=1)
        print(f"registration  : {result.duration * 1e3:7.1f} ms "
              f"({result.messages} control messages)")

        # 2. Establish a PDU session; the UPF installs UL/DL rules.
        result = yield from runner.establish_session(ue, pdu_session_id=1)
        ue_ip = result.detail["ue_ip"]
        print(f"pdu session   : {result.duration * 1e3:7.1f} ms "
              f"(UE IP {int_to_ip(ue_ip)}, UL TEID "
              f"{result.detail['ul_teid']:#x})")

        # 3. Uplink + downlink user traffic through the UPF.
        uplink = Packet(
            direction=Direction.UPLINK,
            teid=result.detail["ul_teid"],
            flow=FiveTuple(src_ip=ue_ip, dst_ip=0x08080808,
                           src_port=40000, dst_port=443),
        )
        core.inject_uplink(uplink)
        downlink = Packet(
            direction=Direction.DOWNLINK,
            flow=FiveTuple(src_ip=0x08080808, dst_ip=ue_ip,
                           src_port=443, dst_port=40000),
            created_at=env.now,
        )
        core.inject_downlink(downlink)
        yield env.timeout(0.001)
        print(f"data plane    : {core.upf_u.stats.forwarded} packets "
              f"forwarded (UL {core.upf_u.stats.forwarded_ul}, "
              f"DL {core.upf_u.stats.forwarded_dl})")

        # 4. Idle transition, then a downlink packet pages the UE back.
        yield from runner.release_to_idle(ue)
        print(f"ue state      : {ue.cm_state.value}")
        core.on_report = lambda report: env.process(wake())

        def wake():
            result = yield from runner.page_ue(ue)
            print(f"paging        : {result.duration * 1e3:7.1f} ms "
                  f"-> {ue.cm_state.value}")

        core.inject_downlink(Packet(
            direction=Direction.DOWNLINK,
            flow=FiveTuple(src_ip=0x08080808, dst_ip=ue_ip,
                           src_port=443, dst_port=40000),
            created_at=env.now,
        ))

    env.process(scenario())
    try:
        env.run()
    finally:
        if tracer is not None:
            obs.disable()
    print(f"total messages: {core.bus.total_messages()} over "
          f"{core.config.sbi_channel.value}")
    if tracer is not None:
        doc = obs.write_chrome_trace(trace_path, tracer,
                                     process_name="quickstart")
        print(f"trace         : {trace_path} "
              f"({len(doc['traceEvents'])} events)")


if __name__ == "__main__":
    main()
