"""Ablation benchmarks (DESIGN.md's design-choice studies).

Not figures from the paper, but quantifications of its design choices:

* transport ablation — which shared-memory interface (SBI vs N4) buys
  how much of the event-time reduction;
* session scaling — per-UE control-plane latency as session count
  grows (the paper's stated scalability limitation);
* classifier-in-UPF — Fig 11's result measured inside the actual
  forwarding pipeline.
"""

from repro.cp.core5g import SystemConfig
from repro.experiments.common import run_ue_events
from repro.experiments.scalability import (
    classifier_ablation,
    session_scale_sweep,
)


def test_transport_ablation(benchmark, table):
    """free5GC -> +shm N4 -> +shm SBI -> full L25GC, per event."""
    configs = [
        SystemConfig.free5gc(),
        SystemConfig.onvm_upf(),      # shm N4 only
        SystemConfig.shm_sbi_only(),  # shm SBI only
        SystemConfig.l25gc(),         # both
    ]

    def run():
        return {
            config.name: run_ue_events(config) for config in configs
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    events = ("registration", "session-request", "handover", "paging")
    table(
        "Ablation: event completion time (ms) by transport",
        ["event"] + [config.name for config in configs],
        [
            tuple(
                [event]
                + [
                    results[config.name][event].duration * 1e3
                    for config in configs
                ]
            )
            for event in events
        ],
    )
    for event in events:
        free = results["free5gc"][event].duration
        n4_only = results["onvm-upf"][event].duration
        sbi_only = results["shm-sbi-only"][event].duration
        full = results["l25gc"][event].duration
        # The SBI dominates the savings; N4 alone is marginal.
        assert free - sbi_only > 5 * (free - n4_only)
        # The full system is at least as fast as either partial one.
        assert full <= sbi_only and full <= n4_only
    benchmark.extra_info["sbi_share_of_savings"] = (
        (results["free5gc"]["paging"].duration
         - results["shm-sbi-only"]["paging"].duration)
        / (results["free5gc"]["paging"].duration
           - results["l25gc"]["paging"].duration)
    )


def test_session_scaling(benchmark, table):
    rows = benchmark.pedantic(
        session_scale_sweep,
        args=(SystemConfig.l25gc(),),
        kwargs={"session_counts": (1, 5, 10, 25)},
        rounds=1,
        iterations=1,
    )
    table(
        "Ablation: session scaling (L25GC)",
        ["sessions", "reg_ms", "est_ms", "total_s", "messages"],
        [
            (row.sessions, row.mean_registration_s * 1e3,
             row.mean_session_establishment_s * 1e3,
             row.total_onboarding_s, row.control_messages)
            for row in rows
        ],
    )
    registrations = [row.mean_registration_s for row in rows]
    assert max(registrations) < 1.05 * min(registrations)


def test_classifier_in_upf(benchmark, table):
    rows = benchmark.pedantic(
        classifier_ablation,
        kwargs={"rule_counts": (0, 8, 48, 98, 498), "lookups": 200},
        rounds=1,
        iterations=1,
    )
    table(
        "Ablation: classifier inside the forwarding pipeline (us/pkt)",
        ["rules/session", "PDR-LL", "PDR-PS", "speedup_x"],
        [
            (row.rules_per_session, row.lookup_us["PDR-LL"],
             row.lookup_us["PDR-PS"], row.speedup())
            for row in rows
        ],
    )
    final = rows[-1]
    benchmark.extra_info["speedup_500_rules"] = final.speedup()
    # The paper's headline: ~20x lookup speedup at scale.
    assert final.speedup() > 8.0
