"""Fig 6 — serialization/deserialization/protocol overheads.

Times the four real codecs on the paper's ``PostSmContextsRequest``
and prints the Fig 6 breakdown.
"""

import pytest

from repro.experiments.fig06 import measure_serialization
from repro.sbi.codecs import DescriptorCodec, FlatCodec, JsonCodec, ProtoCodec
from repro.sbi.messages import PostSmContextsRequest

MESSAGE = PostSmContextsRequest()


@pytest.mark.parametrize(
    "codec_class",
    [JsonCodec, ProtoCodec, FlatCodec, DescriptorCodec],
    ids=["json", "protobuf", "flatbuffers", "shm-descriptor"],
)
def test_encode(benchmark, codec_class):
    codec = codec_class()
    benchmark(codec.encode, MESSAGE)


@pytest.mark.parametrize(
    "codec_class",
    [JsonCodec, ProtoCodec, FlatCodec, DescriptorCodec],
    ids=["json", "protobuf", "flatbuffers", "shm-descriptor"],
)
def test_decode(benchmark, codec_class):
    codec = codec_class()
    encoded = codec.encode(MESSAGE)
    benchmark(codec.decode, encoded)


def test_fig06_table(benchmark, table):
    rows = benchmark.pedantic(
        measure_serialization, kwargs={"repeats": 100}, rounds=1, iterations=1
    )
    table(
        "Fig 6: serialization overheads (PostSmContextsRequest)",
        ["format", "serialize_us", "deserialize_us", "protocol_us",
         "total_us", "bytes"],
        [
            (
                row.format,
                row.serialize_s * 1e6,
                row.deserialize_s * 1e6,
                row.protocol_s * 1e6,
                row.total_s * 1e6,
                row.encoded_bytes,
            )
            for row in rows
        ],
    )
    shm = next(row for row in rows if row.format == "shm-descriptor")
    json_row = next(row for row in rows if row.format == "json")
    benchmark.extra_info["json_total_us"] = json_row.total_s * 1e6
    benchmark.extra_info["shm_total_us"] = shm.total_s * 1e6
    assert shm.total_s < json_row.total_s / 50
