"""Fig 7 — single PFCP message latency SMF <-> UPF-C.

Also micro-benchmarks the real TLV codec on the same messages.
"""

import pytest

from repro.experiments.fig07 import MESSAGE_BUILDERS, pfcp_message_latency
from repro.pfcp import decode_message


@pytest.mark.parametrize("name", list(MESSAGE_BUILDERS), ids=str)
def test_tlv_encode(benchmark, name):
    message = MESSAGE_BUILDERS[name]()
    benchmark(message.encode)


@pytest.mark.parametrize("name", list(MESSAGE_BUILDERS), ids=str)
def test_tlv_decode(benchmark, name):
    encoded = MESSAGE_BUILDERS[name]().encode()
    benchmark(decode_message, encoded)


def test_fig07_table(benchmark, table):
    rows = benchmark.pedantic(pfcp_message_latency, rounds=1, iterations=1)
    table(
        "Fig 7: PFCP message latency (transport + handler)",
        ["message", "free5gc_us", "l25gc_us", "reduction_%"],
        [
            (row.message, row.free5gc_s * 1e6, row.l25gc_s * 1e6,
             row.reduction * 100)
            for row in rows
        ],
    )
    for row in rows:
        benchmark.extra_info[f"{row.message}_reduction"] = row.reduction
        # The paper's band: 21-39 % reduction.
        assert 0.21 <= row.reduction <= 0.40
