"""§5.4.2 — smart buffering benefit: Eq 1 (drops) and Eq 2 (delay)."""

from repro.experiments.smart_buffering import (
    simulated_drops,
    smart_buffering_cases,
)


def test_eq1_eq2_table(benchmark, table):
    cases = benchmark.pedantic(smart_buffering_cases, rounds=1, iterations=1)
    rows = []
    for case, entries in cases.items():
        for entry in entries:
            rows.append(
                (
                    case,
                    entry.scheme,
                    entry.buffer_packets,
                    entry.drops,
                    entry.one_way_delay_s * 1e3,
                )
            )
    table(
        "§5.4.2: smart buffering vs 3GPP hairpin (Eqs 1-2)",
        ["case", "scheme", "buffer_pkts", "drops", "one_way_ms"],
        rows,
    )
    case_ii = {entry.scheme: entry for entry in cases["case-ii"]}
    assert case_ii["l25gc-smart"].drops == 0
    assert case_ii["3gpp-hairpin"].drops >= 700  # ~800 in the paper
    delay_saving = (
        case_ii["3gpp-hairpin"].one_way_delay_s
        - case_ii["l25gc-smart"].one_way_delay_s
    )
    benchmark.extra_info["hairpin_delay_saving_ms"] = delay_saving * 1e3
    assert abs(delay_saving - 0.020) < 0.002  # the 20 ms hairpin


def test_eq1_packet_level(benchmark):
    """The packet-level simulation agrees with Eq 1's arithmetic."""
    drops = benchmark.pedantic(
        simulated_drops,
        kwargs={"dl_rate_pps": 10_000, "handover_s": 0.130,
                "queue_length": 500},
        rounds=1,
        iterations=1,
    )
    assert abs(drops - 800) <= 2
