"""Fig 8 — total control-plane latency per UE event, three systems."""

from repro.experiments.fig08 import event_completion_times


def test_fig08_table(benchmark, table):
    rows = benchmark.pedantic(event_completion_times, rounds=1, iterations=1)
    table(
        "Fig 8: event completion time (ms)",
        ["event", "free5gc", "onvm-upf", "l25gc", "reduction_%", "messages"],
        [
            (
                row.event,
                row.free5gc_s * 1e3,
                row.onvm_upf_s * 1e3,
                row.l25gc_s * 1e3,
                row.reduction * 100,
                row.messages,
            )
            for row in rows
        ],
    )
    for row in rows:
        benchmark.extra_info[f"{row.event}_reduction"] = row.reduction
        # "Reduces event completion time by ~50% ... up to 51%".
        assert 0.40 <= row.reduction <= 0.62
    paging = next(row for row in rows if row.event == "paging")
    handover = next(row for row in rows if row.event == "handover")
    assert abs(paging.free5gc_s - 59e-3) / 59e-3 < 0.15
    assert abs(handover.l25gc_s - 130e-3) / 130e-3 < 0.10
