"""§5.5.3 + Fig 16 — failure during handover plus data transfer."""

from repro.experiments.fig16 import failover_during_handover


def test_fig16_table(benchmark, table):
    results = benchmark.pedantic(
        failover_during_handover, rounds=1, iterations=1
    )
    table(
        "Fig 16: failover during handover (TCP transfer in flight)",
        ["scheme", "stall_ms", "goodput_before_Mbps", "goodput_after_Mbps",
         "transferred_MB", "rtx", "spurious"],
        [
            (
                name,
                result.stall_s * 1e3,
                result.goodput_before_bps / 1e6,
                result.goodput_after_bps / 1e6,
                result.total_transferred_bytes / (1 << 20),
                result.retransmissions,
                result.spurious_timeouts,
            )
            for name, result in results.items()
        ],
    )
    l25gc = results["l25gc"]
    reattach = results["3gpp-reattach"]
    benchmark.extra_info["l25gc_goodput_after"] = l25gc.goodput_after_bps
    # L25GC maintains throughput through the failure (Fig 16b).
    assert l25gc.goodput_after_bps > 0.85 * l25gc.goodput_before_bps
    assert l25gc.retransmissions == 0
    assert reattach.retransmissions > 0
    assert l25gc.total_transferred_bytes > reattach.total_transferred_bytes
