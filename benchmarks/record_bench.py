"""Record the UPF perf trajectory: ``python benchmarks/record_bench.py``.

Runs the platform-micro benchmark under pytest-benchmark, distills the
full (machine-noisy, megabyte-scale) pytest-benchmark JSON into the
headline numbers, and appends one record to ``BENCH_upf.json`` — the
committed perf trajectory.  Each record carries the git revision it was
measured at, so the file answers "what did the flow-cache speedup look
like at PR N" without spelunking CI artifacts.

A second suite covers the scale-out axis: ``--suite shard`` runs the
10k -> 1M session x 1/2/4/8 shard sweep from
:mod:`repro.experiments.scalability` and appends to ``BENCH_shard.json``
(``--reduced`` shrinks it to the CI smoke grid).

A third covers the batching axis: ``--suite burst`` runs the measured
burst-size sweep from :mod:`repro.experiments.burst` (per-packet cost
at burst 1/4/8/16/32/64 on the cache-hit path) and appends to
``BENCH_burst.json``.

A fourth covers the state-layout axis: ``--suite cache`` runs the
measured working-set sweep (per-decision cost over growing session
counts, hot-slab vs. dict layout) and the flow-cache
capacity/associativity ablation from :mod:`repro.experiments.cache`,
plus the modeled LLC-cliff rows from
:func:`repro.experiments.fig10.llc_cliff`, and appends to
``BENCH_cache.json``.

Options::

    python benchmarks/record_bench.py            # append to BENCH_upf.json
    python benchmarks/record_bench.py --fresh    # start the file over
    python benchmarks/record_bench.py --output other.json
    python benchmarks/record_bench.py --suite shard [--reduced]
    python benchmarks/record_bench.py --suite burst [--reduced]
    python benchmarks/record_bench.py --suite cache [--reduced]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILE = os.path.join(REPO_ROOT, "benchmarks",
                          "test_bench_platform_micro.py")
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_upf.json")
SHARD_OUTPUT = os.path.join(REPO_ROOT, "BENCH_shard.json")
BURST_OUTPUT = os.path.join(REPO_ROOT, "BENCH_burst.json")
CACHE_OUTPUT = os.path.join(REPO_ROOT, "BENCH_cache.json")


def run_benchmarks() -> dict:
    """One pytest-benchmark run; returns the parsed raw JSON."""
    with tempfile.NamedTemporaryFile(
        suffix=".json", delete=False, mode="w"
    ) as handle:
        raw_path = handle.name
    try:
        subprocess.run(
            [
                sys.executable, "-m", "pytest", "--benchmark-only", "-q",
                f"--benchmark-json={raw_path}", BENCH_FILE,
            ],
            check=True,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        with open(raw_path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    finally:
        os.unlink(raw_path)


def distill(raw: dict) -> dict:
    """One trajectory record from a raw pytest-benchmark payload."""
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        entry = {
            "name": bench.get("name"),
            "mean_us": round(stats.get("mean", 0.0) * 1e6, 4),
            "stddev_us": round(stats.get("stddev", 0.0) * 1e6, 4),
            "rounds": stats.get("rounds"),
        }
        extra = bench.get("extra_info") or {}
        if extra:
            entry["extra_info"] = {
                key: round(value, 4) if isinstance(value, float) else value
                for key, value in sorted(extra.items())
            }
        benchmarks.append(entry)
    benchmarks.sort(key=lambda entry: entry["name"] or "")
    return {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }


def run_shard_sweep(reduced: bool = False) -> dict:
    """One shard-scalability record (see experiments.scalability)."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from dataclasses import asdict

    from repro.experiments.scalability import shard_scale_sweep

    if reduced:
        rows = shard_scale_sweep(
            session_counts=(10_000,),
            shard_counts=(1, 2, 4),
            resident_per_shard=128,
            packets=1000,
            repeats=2,
        )
    else:
        rows = shard_scale_sweep()
    return {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "reduced": reduced,
        "rows": [
            {
                key: round(value, 4) if isinstance(value, float) else value
                for key, value in asdict(row).items()
            }
            for row in rows
        ],
    }


def run_burst_sweep(reduced: bool = False) -> dict:
    """One burst-size sweep record (see experiments.burst)."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from dataclasses import asdict

    from repro.experiments.burst import burst_sweep

    if reduced:
        rows = burst_sweep(packets=16384, repeats=2)
    else:
        rows = burst_sweep(packets=131072, repeats=3)
    return {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "reduced": reduced,
        "rows": [
            {
                key: round(value, 4) if isinstance(value, float) else value
                for key, value in asdict(row).items()
            }
            for row in rows
        ],
    }


def run_cache_sweep(reduced: bool = False) -> dict:
    """One cache-layout record (see experiments.cache + fig10).

    Three sections: the *measured* working-set sweep (slab vs. dict
    per-decision ns), the *measured* flow-cache capacity/associativity
    ablation, and the *modeled* LLC-cliff rows from the cost model's
    cache-hierarchy term (deterministic — included so the committed
    file shows the cliff the measured sweep is probing).
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from dataclasses import asdict

    from repro.experiments.cache import (
        flow_cache_ablation_sweep,
        working_set_sweep,
    )
    from repro.experiments.fig10 import llc_cliff

    if reduced:
        working_set = working_set_sweep(
            session_counts=(100, 1_000, 5_000),
            repeats=2,
            min_resolutions=5_000,
        )
        ablation = flow_cache_ablation_sweep(
            capacities=(256, 1024),
            ways_sweep=(1, 4, 0),
            flows=512,
            passes=2,
        )
    else:
        working_set = working_set_sweep()
        ablation = flow_cache_ablation_sweep()

    def rows(items):
        return [
            {
                key: round(value, 4) if isinstance(value, float) else value
                for key, value in asdict(item).items()
            }
            for item in items
        ]

    return {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "reduced": reduced,
        "working_set_rows": rows(working_set),
        "ablation_rows": rows(ablation),
        "modeled_llc_cliff_rows": rows(llc_cliff()),
    }


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True, cwd=REPO_ROOT,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(path: str) -> dict:
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if isinstance(data, dict) and isinstance(data.get("records"), list):
            return data
    return {"version": 1, "records": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Append a platform-micro benchmark record to the "
        "committed perf trajectory."
    )
    parser.add_argument("--output", default=None)
    parser.add_argument(
        "--fresh", action="store_true",
        help="discard existing records instead of appending",
    )
    parser.add_argument(
        "--suite", choices=("micro", "shard", "burst", "cache"),
        default="micro",
        help="micro: pytest-benchmark platform suite; "
        "shard: the sessions x shards scalability sweep; "
        "burst: the measured burst-size sweep; "
        "cache: the working-set + flow-cache-geometry sweep",
    )
    parser.add_argument(
        "--reduced", action="store_true",
        help="shard/burst/cache suites: the CI-sized grid",
    )
    args = parser.parse_args(argv)
    output = args.output or {
        "shard": SHARD_OUTPUT,
        "burst": BURST_OUTPUT,
        "cache": CACHE_OUTPUT,
    }.get(args.suite, DEFAULT_OUTPUT)

    if args.suite == "shard":
        record = run_shard_sweep(reduced=args.reduced)
    elif args.suite == "burst":
        record = run_burst_sweep(reduced=args.reduced)
    elif args.suite == "cache":
        record = run_cache_sweep(reduced=args.reduced)
    else:
        record = distill(run_benchmarks())
    trajectory = (
        {"version": 1, "records": []}
        if args.fresh
        else load_trajectory(output)
    )
    trajectory["records"].append(record)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")

    if args.suite in ("shard", "burst"):
        print(
            f"recorded {len(record['rows'])} sweep row(s) at "
            f"{record['git_rev']} -> {output}"
        )
        return 0
    if args.suite == "cache":
        print(
            f"recorded {len(record['working_set_rows'])} working-set + "
            f"{len(record['ablation_rows'])} ablation + "
            f"{len(record['modeled_llc_cliff_rows'])} modeled row(s) at "
            f"{record['git_rev']} -> {output}"
        )
        return 0
    names = ", ".join(
        entry["name"] for entry in record["benchmarks"] if entry["name"]
    )
    print(
        f"recorded {len(record['benchmarks'])} benchmark(s) at "
        f"{record['git_rev']} -> {output}: {names}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
