"""Record the UPF perf trajectory: ``python benchmarks/record_bench.py``.

Runs the platform-micro benchmark under pytest-benchmark, distills the
full (machine-noisy, megabyte-scale) pytest-benchmark JSON into the
headline numbers, and appends one record to ``BENCH_upf.json`` — the
committed perf trajectory.  Each record carries the git revision it was
measured at, so the file answers "what did the flow-cache speedup look
like at PR N" without spelunking CI artifacts.

Options::

    python benchmarks/record_bench.py            # append to BENCH_upf.json
    python benchmarks/record_bench.py --fresh    # start the file over
    python benchmarks/record_bench.py --output other.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILE = os.path.join(REPO_ROOT, "benchmarks",
                          "test_bench_platform_micro.py")
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_upf.json")


def run_benchmarks() -> dict:
    """One pytest-benchmark run; returns the parsed raw JSON."""
    with tempfile.NamedTemporaryFile(
        suffix=".json", delete=False, mode="w"
    ) as handle:
        raw_path = handle.name
    try:
        subprocess.run(
            [
                sys.executable, "-m", "pytest", "--benchmark-only", "-q",
                f"--benchmark-json={raw_path}", BENCH_FILE,
            ],
            check=True,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        with open(raw_path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    finally:
        os.unlink(raw_path)


def distill(raw: dict) -> dict:
    """One trajectory record from a raw pytest-benchmark payload."""
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        entry = {
            "name": bench.get("name"),
            "mean_us": round(stats.get("mean", 0.0) * 1e6, 4),
            "stddev_us": round(stats.get("stddev", 0.0) * 1e6, 4),
            "rounds": stats.get("rounds"),
        }
        extra = bench.get("extra_info") or {}
        if extra:
            entry["extra_info"] = {
                key: round(value, 4) if isinstance(value, float) else value
                for key, value in sorted(extra.items())
            }
        benchmarks.append(entry)
    benchmarks.sort(key=lambda entry: entry["name"] or "")
    return {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True, cwd=REPO_ROOT,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(path: str) -> dict:
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if isinstance(data, dict) and isinstance(data.get("records"), list):
            return data
    return {"version": 1, "records": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Append a platform-micro benchmark record to the "
        "committed perf trajectory."
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--fresh", action="store_true",
        help="discard existing records instead of appending",
    )
    args = parser.parse_args(argv)

    record = distill(run_benchmarks())
    trajectory = (
        {"version": 1, "records": []}
        if args.fresh
        else load_trajectory(args.output)
    )
    trajectory["records"].append(record)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")

    names = ", ".join(
        entry["name"] for entry in record["benchmarks"] if entry["name"]
    )
    print(
        f"recorded {len(record['benchmarks'])} benchmark(s) at "
        f"{record['git_rev']} -> {args.output}: {names}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
