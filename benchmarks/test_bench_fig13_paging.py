"""Fig 13 + Table 1 — data-plane latency during a paging event."""

from repro.cp.core5g import SystemConfig
from repro.experiments.fig13 import paging_data_plane


def test_table1(benchmark, table):
    def run():
        return {
            config.name: paging_data_plane(config)
            for config in (SystemConfig.free5gc(), SystemConfig.l25gc())
        }

    observations = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        "Table 1: control and data plane behaviour (paging event)",
        ["system", "base_rtt_us", "paging_ms", "rtt_after_ms",
         "pkts_elevated", "dropped"],
        [
            (
                name,
                observation.base_rtt_s * 1e6,
                observation.paging_time_s * 1e3,
                observation.rtt_after_paging_s * 1e3,
                observation.elevated_packets,
                observation.dropped,
            )
            for name, observation in observations.items()
        ],
    )
    free, l25gc = observations["free5gc"], observations["l25gc"]
    benchmark.extra_info["paging_ratio"] = (
        free.paging_time_s / l25gc.paging_time_s
    )
    # Paper: 116/25 us base; 59/28 ms paging; 608/294 elevated.
    assert abs(free.base_rtt_s - 116e-6) / 116e-6 < 0.10
    assert abs(l25gc.base_rtt_s - 25e-6) / 25e-6 < 0.10
    assert 1.7 <= free.paging_time_s / l25gc.paging_time_s <= 2.4
    assert free.elevated_packets > 1.7 * l25gc.elevated_packets
