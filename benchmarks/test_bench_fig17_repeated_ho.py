"""Appendix C / Fig 17 — repeated handovers under 10 TCP connections."""

from repro.experiments.fig17 import repeated_handovers


def test_fig17_table(benchmark, table):
    results = benchmark.pedantic(repeated_handovers, rounds=1, iterations=1)
    table(
        "Fig 17 (Appendix C): repeated handovers, 10 TCP connections",
        ["system", "stall_ms", "handovers", "data_MB", "rtx",
         "rtx_per_ho", "spurious", "max_rtt_ms"],
        [
            (
                name,
                result.stall_s * 1e3,
                result.handovers,
                result.transferred_bytes / (1 << 20),
                result.retransmissions,
                result.rtx_per_handover,
                result.spurious_timeouts,
                result.max_rtt_s * 1e3,
            )
            for name, result in results.items()
        ],
    )
    free, l25gc = results["free5gc"], results["l25gc"]
    gap = (l25gc.transferred_bytes - free.transferred_bytes) / l25gc.transferred_bytes
    print(f"data transfer advantage: {gap * 100:.1f}% "
          "(paper: 442 MB vs 416 MB, ~6%)")
    benchmark.extra_info["transfer_gap"] = gap
    # Appendix C's shape: spurious rtx every handover for free5GC (max
    # RTT > 200 ms min RTO), none for L25GC; more data moved by L25GC.
    assert free.spurious_timeouts >= free.handovers
    assert l25gc.spurious_timeouts == 0
    assert free.max_rtt_s > 0.2 > l25gc.max_rtt_s
    assert gap > 0.02
