"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures: it runs
the experiment (timed by pytest-benchmark), prints the same rows/series
the paper reports, and stores the headline numbers in
``benchmark.extra_info`` so they land in the JSON output.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one reproduction table to stdout."""
    print(f"\n=== {title} ===")
    rendered = [
        [f"{cell:.4g}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(row[i]) for row in rendered)) + 2
        if rendered
        else len(col) + 2
        for i, col in enumerate(header)
    ]
    print("".join(col.ljust(width) for col, width in zip(header, widths)))
    for row in rendered:
        print("".join(cell.ljust(width) for cell, width in zip(row, widths)))


@pytest.fixture
def table():
    return print_table
