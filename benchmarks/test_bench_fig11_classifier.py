"""Fig 11 — PDR lookup latency/throughput vs rule count.

These are *real measurements* of the three classifier data structures
over ClassBench-style rule sets with 20 PDI IEs.
"""

import pytest

from repro.experiments.fig11 import (
    CLASSIFIER_VARIANTS,
    build_classifier,
    cached_lookup_sweep,
    lookup_latency_sweep,
    update_latency,
)

SWEEP_COUNTS = (2, 10, 50, 100, 500, 1000)


@pytest.mark.parametrize("variant", list(CLASSIFIER_VARIANTS), ids=str)
@pytest.mark.parametrize("rules", [100, 1000], ids=lambda n: f"{n}rules")
def test_lookup(benchmark, variant, rules):
    """Per-variant, per-size lookup micro-benchmark."""
    classifier, keys = build_classifier(variant, rules)
    index = {"value": 0}

    def one_lookup():
        key = keys[index["value"] % len(keys)]
        index["value"] += 1
        return classifier.lookup(key)

    benchmark(one_lookup)


def test_fig11_latency_table(benchmark, table):
    rows = benchmark.pedantic(
        lookup_latency_sweep,
        kwargs={"rule_counts": SWEEP_COUNTS},
        rounds=1,
        iterations=1,
    )
    variants = list(CLASSIFIER_VARIANTS)
    table(
        "Fig 11(a): PDR lookup latency (us/lookup)",
        ["rules"] + variants,
        [
            tuple([row.rules] + [row.latency_s[v] * 1e6 for v in variants])
            for row in rows
        ],
    )
    table(
        "Fig 11(b): PDR lookup throughput (k lookups/s)",
        ["rules"] + variants,
        [
            tuple(
                [row.rules]
                + [row.throughput_pps(v) / 1e3 for v in variants]
            )
            for row in rows
        ],
    )
    large = next(row for row in rows if row.rules == 1000)
    # The paper's shape: PS best, TSS_Best flat, LL linear, TSS_Worst
    # off the chart.
    assert large.latency_s["PDR-PS"] <= large.latency_s["PDR-LL"]
    assert large.latency_s["PDR-TSS_Worst"] > 5 * large.latency_s["PDR-TSS_Best"]
    small = next(row for row in rows if row.rules == 2)
    assert small.latency_s["PDR-LL"] < 5 * small.latency_s["PDR-PS"]
    benchmark.extra_info["ps_speedup_over_ll_1k"] = (
        large.latency_s["PDR-LL"] / large.latency_s["PDR-PS"]
    )


def test_cached_lookup_ablation_table(benchmark, table):
    """Flow-cache ablation: the memoized probe vs the raw classifier,
    across rule counts (both real wall-clock measurements)."""
    rows = benchmark.pedantic(
        cached_lookup_sweep,
        kwargs={"rule_counts": SWEEP_COUNTS},
        rounds=1,
        iterations=1,
    )
    table(
        "Flow-cache ablation: PDR-PS lookup vs cached decision (us)",
        ["rules", "uncached_us", "cached_us", "speedup_x"],
        [
            (row.rules, row.uncached_s * 1e6, row.cached_s * 1e6, row.speedup)
            for row in rows
        ],
    )
    # The cached probe is O(1): roughly flat while the classifier walk
    # grows, so the gap must widen with the rule count.
    large = next(row for row in rows if row.rules == 1000)
    small = next(row for row in rows if row.rules == 2)
    assert large.speedup > 2.0
    assert large.speedup > small.speedup
    assert large.cached_s < 5 * small.cached_s
    benchmark.extra_info["cached_speedup_1k_rules"] = large.speedup


def test_pdr_update_table(benchmark, table):
    rows = benchmark.pedantic(update_latency, rounds=1, iterations=1)
    table(
        "§5.3: PDR update latency (us, 50 single-rule updates)",
        ["variant", "update_us"],
        [(row.variant, row.update_s * 1e6) for row in rows],
    )
    by_variant = {row.variant: row.update_s for row in rows}
    # Paper: LL 0.38 us < TSS 1.41 us < PS 6.14 us — same ordering here,
    # with LL cheapest and PS within the same order of magnitude.
    assert by_variant["PDR-LL"] < by_variant["PDR-TSS_Best"]
    assert by_variant["PDR-LL"] < by_variant["PDR-PS"]
    assert by_variant["PDR-PS"] < 50 * by_variant["PDR-LL"]
