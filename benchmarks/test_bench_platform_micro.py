"""Micro-benchmarks of the real platform primitives.

Not tied to a single figure — these quantify the building blocks the
shared-memory design leans on: descriptor rings, the mempool, GTP-U
encap/decap, the Toeplitz RSS hash, checkpoint deltas, and the UPF-U
flow-cache fast path.
"""

import time

from repro.classifier import Rule, exact
from repro.core import Ring, SharedMemoryPool
from repro.deploy.rss import hash_five_tuple
from repro.net import Direction, FiveTuple, Packet, decapsulate, encapsulate
from repro.pfcp import ies as pfcp_ies
from repro.pfcp.builder import build_session_establishment
from repro.resiliency import compute_delta
from repro.sim import Environment
from repro.up import PDR, SessionTable, UPFControlPlane, UPFUserPlane


def test_ring_enqueue_dequeue(benchmark):
    ring = Ring(1024)

    def cycle():
        ring.enqueue("descriptor")
        return ring.dequeue()

    benchmark(cycle)


def test_ring_burst_32(benchmark):
    ring = Ring(1024)
    batch = list(range(32))

    def cycle():
        ring.enqueue_burst(batch)
        return ring.dequeue_burst(32)

    benchmark(cycle)


def test_pool_alloc_free(benchmark):
    pool = SharedMemoryPool(size=1024)

    def cycle():
        descriptor = pool.alloc("payload")
        descriptor.free()

    benchmark(cycle)


def test_gtp_encapsulate(benchmark):
    inner = Packet(
        size=128,
        flow=FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4),
    ).to_bytes()
    benchmark(encapsulate, inner, 0x100, 10, 20, 9)


def test_gtp_decapsulate(benchmark):
    inner = Packet(
        size=128,
        flow=FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4),
    ).to_bytes()
    outer = encapsulate(inner, 0x100, 10, 20, 9)
    benchmark(decapsulate, outer)


def test_rss_toeplitz(benchmark):
    flow = FiveTuple(src_ip=0x0A000001, dst_ip=0x08080808,
                     src_port=40000, dst_port=443)
    benchmark(hash_five_tuple, flow)


UE_IP = 0x0A3C0001
FILLER_PDRS = 64
FLOWS = 8
STEADY_ITERS = 4000


def _upf(flow_cache):
    """A UPF-U with one session padded with non-matching PDRs, so the
    uncached walk has a realistic (64-rule) match to pay."""
    env = Environment()
    table = SessionTable()
    upf_u = UPFUserPlane(env, table, flow_cache=flow_cache)
    upf_c = UPFControlPlane(table, upf_u=upf_u, address=1)
    upf_c.handle(
        build_session_establishment(
            seid=1, sequence=1, ue_ip=UE_IP, upf_address=1,
            ul_teid=0x100, gnb_address=2, dl_teid=0x500,
        )
    )
    session = table.by_seid(1)
    dl_far_id = next(
        pdr.far_id
        for pdr in session.pdrs.values()
        if pdr.source_interface == pfcp_ies.CORE
    )
    for i in range(FILLER_PDRS):
        session.install_pdr(
            PDR(
                pdr_id=100 + i,
                precedence=1,
                match=Rule.from_fields(
                    priority=500 + i,
                    rule_id=100 + i,
                    far_id=dl_far_id,
                    dst_ip=exact(UE_IP),
                    dst_port=exact(10000 + i),
                    source_iface=exact(pfcp_ies.CORE),
                ),
                far_id=dl_far_id,
                source_interface=pfcp_ies.CORE,
            )
        )
    return upf_u


def _dl_flows():
    return [
        Packet(
            direction=Direction.DOWNLINK,
            flow=FiveTuple(
                src_ip=1, dst_ip=UE_IP, src_port=80 + i, dst_port=4000
            ),
            size=128,
        )
        for i in range(FLOWS)
    ]


def _steady_state_seconds(upf_u, packets, iters=STEADY_ITERS):
    for packet in packets:  # warm: fill the cache / fault the code paths
        upf_u.process(packet)
    begin = time.perf_counter()
    for i in range(iters):
        packet = packets[i % len(packets)]
        packet.teid = None  # undo the previous pass's GTP encap
        upf_u.process(packet)
    return (time.perf_counter() - begin) / iters


def test_flow_cache_steady_state_speedup(benchmark):
    """Regression guard: the memoized fast path must beat the full
    match pipeline at steady state by a comfortable margin."""

    def measure():
        uncached_s = _steady_state_seconds(_upf(False), _dl_flows())
        cached_s = _steady_state_seconds(_upf(True), _dl_flows())
        return uncached_s, cached_s

    uncached_s, cached_s = benchmark.pedantic(measure, rounds=3, iterations=1)
    speedup = uncached_s / cached_s
    benchmark.extra_info["uncached_us"] = uncached_s * 1e6
    benchmark.extra_info["cached_us"] = cached_s * 1e6
    benchmark.extra_info["flow_cache_speedup"] = speedup
    assert speedup >= 1.2


def test_flow_cache_hit_path(benchmark):
    """Raw per-packet cost with every packet a cache hit."""
    upf_u = _upf(True)
    packet = _dl_flows()[0]
    upf_u.process(packet)  # fill

    def cycle():
        packet.teid = None  # undo the previous pass's GTP encap
        return upf_u.process(packet)

    benchmark(cycle)
    assert upf_u.flow_cache.hits > 0
    assert upf_u.flow_cache.misses == 1  # only the initial fill missed


def test_burst32_hit_path(benchmark):
    """Raw per-burst cost: 32 packets, every one a cache hit."""
    from repro.experiments.burst import build_burst_upf, packet_pool

    upf_u = build_burst_upf()
    pool = packet_pool(flows=FLOWS, pool_size=32)
    upf_u.process_burst(pool)  # fill

    def cycle():
        for packet in pool:
            packet.teid = None  # undo the previous pass's GTP encap
        return upf_u.process_burst(pool)

    benchmark(cycle)
    assert upf_u.flow_cache.hits > 0
    assert upf_u.flow_cache.misses == FLOWS  # only the initial fills


def test_burst_steady_state_speedup(benchmark):
    """Burst-size sweep + regression guard: ``process_burst`` at 32
    must beat one-packet-per-call by >= 1.5x on the cache-hit path
    (the ISSUE 8 acceptance bar)."""
    from repro.experiments.burst import burst_sweep

    def measure():
        return burst_sweep(packets=32768, repeats=3)

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for row in rows:
        benchmark.extra_info[f"burst_{row.burst_size}_us"] = round(
            row.per_packet_us, 4
        )
        benchmark.extra_info[f"burst_{row.burst_size}_speedup"] = round(
            row.speedup_vs_burst1, 4
        )
    at32 = next(row for row in rows if row.burst_size == 32)
    assert at32.speedup_vs_burst1 >= 1.5


def test_hot_store_steady_state(benchmark):
    """Working-set regression guard for the hot/cold split.

    The hot-slab resolution path must not regress against the legacy
    dict-of-objects layout at a mid-size working set: the slab probe +
    fixed-offset record reads replace an object-dict probe + property-
    delegated reads, so slab/dict <= 1.1 (slab at least roughly as
    fast; in practice it wins).  Also pins that the slab really is the
    production path: the pipeline's session lookup and the measured
    slab series resolve the same records.
    """
    from repro.experiments.cache import working_set_sweep

    def measure():
        return working_set_sweep(
            session_counts=(2_000,), repeats=3, min_resolutions=10_000
        )

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    row = rows[0]
    benchmark.extra_info["slab_ns"] = round(row.slab_ns_per_packet, 2)
    benchmark.extra_info["dict_ns"] = round(row.dict_ns_per_packet, 2)
    benchmark.extra_info["dict_over_slab"] = round(row.dict_over_slab, 4)
    assert row.slab_ns_per_packet <= row.dict_ns_per_packet * 1.1


def test_checkpoint_delta(benchmark):
    old = {f"session-{i}": {"teid": i, "state": "active"} for i in range(50)}
    new = dict(old)
    new["session-7"] = {"teid": 7, "state": "handover"}
    new["session-99"] = {"teid": 99, "state": "active"}
    benchmark(compute_delta, old, new)
