"""Micro-benchmarks of the real platform primitives.

Not tied to a single figure — these quantify the building blocks the
shared-memory design leans on: descriptor rings, the mempool, GTP-U
encap/decap, the Toeplitz RSS hash, and checkpoint deltas.
"""

from repro.core import Ring, SharedMemoryPool
from repro.deploy.rss import hash_five_tuple
from repro.net import FiveTuple, Packet, decapsulate, encapsulate
from repro.resiliency import compute_delta


def test_ring_enqueue_dequeue(benchmark):
    ring = Ring(1024)

    def cycle():
        ring.enqueue("descriptor")
        return ring.dequeue()

    benchmark(cycle)


def test_ring_burst_32(benchmark):
    ring = Ring(1024)
    batch = list(range(32))

    def cycle():
        ring.enqueue_burst(batch)
        return ring.dequeue_burst(32)

    benchmark(cycle)


def test_pool_alloc_free(benchmark):
    pool = SharedMemoryPool(size=1024)

    def cycle():
        descriptor = pool.alloc("payload")
        descriptor.free()

    benchmark(cycle)


def test_gtp_encapsulate(benchmark):
    inner = Packet(
        size=128,
        flow=FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4),
    ).to_bytes()
    benchmark(encapsulate, inner, 0x100, 10, 20, 9)


def test_gtp_decapsulate(benchmark):
    inner = Packet(
        size=128,
        flow=FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4),
    ).to_bytes()
    outer = encapsulate(inner, 0x100, 10, 20, 9)
    benchmark(decapsulate, outer)


def test_rss_toeplitz(benchmark):
    flow = FiveTuple(src_ip=0x0A000001, dst_ip=0x08080808,
                     src_port=40000, dst_port=443)
    benchmark(hash_five_tuple, flow)


def test_checkpoint_delta(benchmark):
    old = {f"session-{i}": {"teid": i, "state": "active"} for i in range(50)}
    new = dict(old)
    new["session-7"] = {"teid": 7, "state": "handover"}
    new["session-99"] = {"teid": 99, "state": "active"}
    benchmark(compute_delta, old, new)
