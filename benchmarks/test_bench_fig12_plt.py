"""Fig 12 / §5.4.1 — web page load time under intermittent handovers."""

from repro.experiments.fig12 import page_load_under_handovers


def test_fig12_table(benchmark, table):
    comparison = benchmark.pedantic(
        page_load_under_handovers, rounds=1, iterations=1
    )
    table(
        "Fig 12 / §5.4.1: page load under handovers",
        ["system", "plt_s", "stall_ms", "spurious_rto", "retransmissions"],
        [
            (
                "free5gc",
                comparison.free5gc.plt,
                comparison.free5gc_stall_s * 1e3,
                comparison.free5gc.spurious_timeouts,
                comparison.free5gc.retransmissions,
            ),
            (
                "l25gc",
                comparison.l25gc.plt,
                comparison.l25gc_stall_s * 1e3,
                comparison.l25gc.spurious_timeouts,
                comparison.l25gc.retransmissions,
            ),
        ],
    )
    print(
        f"PLT improvement: {comparison.plt_improvement * 100:.1f}% "
        "(paper: 12.5%)"
    )
    benchmark.extra_info["plt_improvement"] = comparison.plt_improvement
    # The paper's drivers: free5GC's stall > min RTO causes spurious
    # retransmissions; L25GC sees none and loads faster.
    assert comparison.l25gc.spurious_timeouts == 0
    assert comparison.free5gc.spurious_timeouts > 0
    assert comparison.free5gc.retransmissions > 300
    assert comparison.plt_improvement > 0.03
