"""Fig 9 — per-message communication speedup over HTTP (~13x avg)."""

from repro.experiments.fig09 import average_speedup, communication_speedup


def test_fig09_table(benchmark, table):
    rows = benchmark.pedantic(communication_speedup, rounds=1, iterations=1)
    table(
        "Fig 9: speedup of shared memory over HTTP per message",
        ["message", "http_us", "shm_us", "speedup_x", "json_bytes"],
        [
            (row.message, row.http_s * 1e6, row.shm_s * 1e6,
             row.speedup, row.json_bytes)
            for row in rows
        ],
    )
    average = average_speedup(rows)
    print(f"average speedup: {average:.1f}x (paper: ~13x)")
    benchmark.extra_info["average_speedup"] = average
    assert 11.0 <= average <= 16.0
