"""Fig 14 + Table 2 — data-plane latency during a handover event."""

import pytest

from repro.cp.core5g import SystemConfig
from repro.experiments.fig14 import handover_data_plane


@pytest.mark.parametrize("sessions", [1, 4], ids=["expt-i", "expt-ii"])
def test_table2(benchmark, table, sessions):
    def run():
        return {
            config.name: handover_data_plane(
                config, concurrent_sessions=sessions
            )
            for config in (SystemConfig.free5gc(), SystemConfig.l25gc())
        }

    observations = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        f"Table 2 ({'expt i' if sessions == 1 else 'expt ii'}): "
        "handover event",
        ["system", "base_rtt_us", "ho_ms", "rtt_after_ms",
         "pkts_elevated", "dropped"],
        [
            (
                name,
                observation.base_rtt_s * 1e6,
                observation.handover_time_s * 1e3,
                observation.rtt_after_handover_s * 1e3,
                observation.elevated_packets,
                observation.dropped,
            )
            for name, observation in observations.items()
        ],
    )
    free, l25gc = observations["free5gc"], observations["l25gc"]
    assert 1.5 <= free.handover_time_s / l25gc.handover_time_s <= 2.0
    assert free.elevated_packets > l25gc.elevated_packets
    if sessions == 1:
        # Expt i anchors: HO 227 vs 130 ms, no drops.
        assert abs(free.handover_time_s - 227e-3) / 227e-3 < 0.10
        assert abs(l25gc.handover_time_s - 130e-3) / 130e-3 < 0.10
        assert free.dropped == 0 and l25gc.dropped == 0
    else:
        # Expt ii: 425/39 us base RTT; free5GC's shared buffer drops.
        assert abs(free.base_rtt_s - 425e-6) / 425e-6 < 0.15
        assert abs(l25gc.base_rtt_s - 39e-6) / 39e-6 < 0.15
        assert free.dropped > 0
        assert l25gc.dropped == 0
