"""Fig 10 — data-plane throughput and latency vs. packet size,
plus the §5.3 40 Gbps core-scaling study.

Also micro-benchmarks the real UPF-U forwarding pipeline per packet.
"""

import pytest

from repro.experiments.fig10 import (
    flow_cache_ablation,
    latency_vs_packet_size,
    scaling_40g,
    throughput_vs_packet_size,
)
from repro.net import Direction, FiveTuple, Packet
from repro.pfcp.builder import build_session_establishment
from repro.sim import Environment
from repro.up import SessionTable, UPFControlPlane, UPFUserPlane

UE_IP = 0x0A3C0001


def _pipeline():
    env = Environment()
    table = SessionTable()
    upf_u = UPFUserPlane(env, table)
    upf_c = UPFControlPlane(table, upf_u=upf_u, address=1)
    upf_c.handle(
        build_session_establishment(
            seid=1, sequence=1, ue_ip=UE_IP, upf_address=1,
            ul_teid=0x100, gnb_address=2, dl_teid=0x500,
        )
    )
    return upf_u


def test_upf_forwarding_downlink(benchmark):
    """Real per-packet cost of the match-action pipeline (DL)."""
    upf_u = _pipeline()
    packet = Packet(
        direction=Direction.DOWNLINK,
        flow=FiveTuple(src_ip=1, dst_ip=UE_IP, src_port=80, dst_port=4000),
    )
    benchmark(upf_u.process, packet)
    assert upf_u.stats.forwarded_dl > 0


def test_upf_forwarding_uplink(benchmark):
    upf_u = _pipeline()
    packet = Packet(
        direction=Direction.UPLINK,
        teid=0x100,
        flow=FiveTuple(src_ip=UE_IP, dst_ip=1, src_port=4000, dst_port=80),
    )
    benchmark(upf_u.process, packet)
    assert upf_u.stats.forwarded_ul > 0


def test_fig10_throughput_table(benchmark, table):
    rows = benchmark.pedantic(
        throughput_vs_packet_size, rounds=1, iterations=1
    )
    table(
        "Fig 10(a,b): throughput vs packet size (Gbps)",
        ["size_B", "free5gc_uni", "l25gc_uni", "ratio_x",
         "free5gc_bidir", "l25gc_bidir"],
        [
            (
                row.size,
                row.free5gc_uni_gbps,
                row.l25gc_uni_gbps,
                row.uni_ratio,
                row.free5gc_bidir_gbps,
                row.l25gc_bidir_gbps,
            )
            for row in rows
        ],
    )
    at68 = next(row for row in rows if row.size == 68)
    benchmark.extra_info["ratio_68B"] = at68.uni_ratio
    assert 24.0 <= at68.uni_ratio <= 30.0  # the paper's 27x


def test_fig10_latency_table(benchmark, table):
    rows = benchmark.pedantic(latency_vs_packet_size, rounds=1, iterations=1)
    table(
        "Fig 10(c): mean end-to-end latency (us)",
        ["size_B", "free5gc_us", "l25gc_us"],
        [(row.size, row.free5gc_s * 1e6, row.l25gc_s * 1e6) for row in rows],
    )
    for row in rows:
        assert row.free5gc_s > 4 * row.l25gc_s


def test_flow_cache_ablation_table(benchmark, table):
    """Cached-vs-uncached CPU-limited forwarding rate per packet size
    (not line-rate capped: the ablation isolates match-pipeline cost)."""
    rows = benchmark.pedantic(flow_cache_ablation, rounds=1, iterations=1)
    table(
        "Flow-cache ablation: CPU-limited forwarding rate (Mpps)",
        ["size_B", "l25gc", "l25gc_cached", "speedup_x",
         "free5gc", "free5gc_cached", "speedup_x"],
        [
            (
                row.size,
                row.l25gc_mpps,
                row.l25gc_cached_mpps,
                row.l25gc_speedup,
                row.free5gc_mpps,
                row.free5gc_cached_mpps,
                row.free5gc_speedup,
            )
            for row in rows
        ],
    )
    at68 = next(row for row in rows if row.size == 68)
    at1500 = next(row for row in rows if row.size == 1500)
    # Memoizing the match buys the most where per-packet overhead
    # dominates: small packets, and more on the kernel path than DPDK.
    assert at68.l25gc_speedup > 1.2
    assert at68.free5gc_speedup > 1.2
    assert at68.l25gc_speedup > at1500.l25gc_speedup > 1.0
    benchmark.extra_info["l25gc_cached_speedup_68B"] = at68.l25gc_speedup
    benchmark.extra_info["free5gc_cached_speedup_68B"] = at68.free5gc_speedup


def test_40g_scaling_table(benchmark, table):
    rows = benchmark.pedantic(scaling_40g, rounds=1, iterations=1)
    table(
        "§5.3: UPF cores vs MTU forwarding rate on a 40G link",
        ["cores", "gbps"],
        [(row.cores, row.mtu_gbps) for row in rows],
    )
    by_cores = {row.cores: row.mtu_gbps for row in rows}
    assert by_cores[1] >= 10.0
    assert 24.0 <= by_cores[2] <= 30.0  # the paper's 28 Gbps
    assert by_cores[4] >= 39.0          # saturates the 40G link
