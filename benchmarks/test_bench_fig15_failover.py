"""§5.5.1-2 + Fig 15 — failover: control-plane and data-plane impact."""

from repro.experiments.fig15 import (
    control_plane_failover,
    data_plane_failover,
)


def test_control_plane_failover(benchmark, table):
    result = benchmark.pedantic(
        control_plane_failover, rounds=1, iterations=1
    )
    table(
        "§5.5.1: handover completion with a mid-procedure 5GC failure",
        ["scheme", "completion_ms"],
        [
            ("l25gc (no failure)", result.l25gc_ho_without_failure_s * 1e3),
            ("l25gc (failure)", result.l25gc_ho_with_failure_s * 1e3),
            ("3gpp reattach", result.reattach_ho_with_failure_s * 1e3),
        ],
    )
    benchmark.extra_info["l25gc_ms"] = result.l25gc_ho_with_failure_s * 1e3
    benchmark.extra_info["reattach_ms"] = (
        result.reattach_ho_with_failure_s * 1e3
    )
    # Paper: 134 ms vs 130 ms vs 401 ms.
    penalty = (
        result.l25gc_ho_with_failure_s - result.l25gc_ho_without_failure_s
    )
    assert penalty < 0.008
    assert abs(result.reattach_ho_with_failure_s - 0.401) < 0.05


def test_data_plane_failover(benchmark, table):
    results = benchmark.pedantic(data_plane_failover, rounds=1, iterations=1)
    table(
        "Fig 15: TCP through a 5GC failure",
        ["scheme", "outage_ms", "pkts_lost", "pkts_replayed",
         "goodput_during_Mbps", "rtx"],
        [
            (
                name,
                result.outage_s * 1e3,
                result.packets_lost,
                result.packets_replayed,
                result.goodput_during_bps / 1e6,
                result.retransmissions,
            )
            for name, result in results.items()
        ],
    )
    assert results["l25gc"].packets_lost == 0
    assert results["3gpp-reattach"].packets_lost > 1000
    assert (
        results["l25gc"].goodput_during_bps
        > results["3gpp-reattach"].goodput_during_bps
    )
