"""Units for the CFG builder and the dataflow solver."""

import ast
import textwrap

from repro.analysis.dataflow import (
    Analysis,
    compute_effects,
    solve,
)
from repro.analysis.program.cfg import build_cfg
from repro.analysis.program.symbols import build_symbol_table


def cfg_of(source, name="f"):
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and node.name == name
    )
    return build_cfg(func, name)


class TestCFG:
    def test_straight_line_def_use(self):
        cfg = cfg_of("""
            def f(a):
                b = a + 1
                return b
        """)
        assign = next(n for n in cfg.nodes if "b" in n.defs)
        assert "a" in assign.uses
        ret = next(
            n for n in cfg.nodes
            if n.stmt is not None and isinstance(n.stmt, ast.Return)
        )
        assert "b" in ret.uses
        assert cfg.exit in ret.succ

    def test_if_branch_and_join(self):
        cfg = cfg_of("""
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
        """)
        header = next(
            n for n in cfg.nodes
            if n.stmt is not None and isinstance(n.stmt, ast.If)
        )
        assert len(header.succ) == 2
        # body_succ marks which successor is the truthy arm.
        assert header.body_succ
        assert set(header.body_succ) <= set(header.succ)

    def test_loop_has_back_edge(self):
        cfg = cfg_of("""
            def f(items):
                total = 0
                for item in items:
                    total += item
                return total
        """)
        head = next(
            n for n in cfg.nodes
            if n.stmt is not None and isinstance(n.stmt, ast.For)
        )
        body = next(
            n for n in cfg.nodes
            if n.stmt is not None and isinstance(n.stmt, ast.AugAssign)
        )
        assert head.index in body.succ  # back edge
        assert "item" in head.defs

    def test_raise_reaches_raise_exit_not_exit(self):
        cfg = cfg_of("""
            def f(a):
                if a:
                    raise ValueError(a)
                return a
        """)
        raiser = next(
            n for n in cfg.nodes
            if n.stmt is not None and isinstance(n.stmt, ast.Raise)
        )
        assert cfg.raise_exit in raiser.exc_succ
        assert cfg.exit not in raiser.succ

    def test_try_except_routes_exception_to_handler(self):
        cfg = cfg_of("""
            def f(a):
                try:
                    b = g(a)
                except ValueError:
                    b = None
                return b
        """)
        call = next(
            n for n in cfg.nodes
            if n.stmt is not None and n.calls and n.calls[0].name == "g"
        )
        # The call's exceptional edge leads (via the dispatch node)
        # into the handler, and the handler body rejoins the return.
        assert call.exc_succ
        handler = next(
            n for n in cfg.nodes
            if n.stmt is not None
            and isinstance(n.stmt, ast.Assign)
            and isinstance(n.stmt.value, ast.Constant)
        )
        reachable = set()
        work = list(call.exc_succ)
        while work:
            index = work.pop()
            if index in reachable:
                continue
            reachable.add(index)
            work.extend(cfg.nodes[index].succ)
        assert handler.index in reachable

    def test_attr_write_recorded(self):
        cfg = cfg_of("""
            def f(d):
                d.seq = 1
        """)
        node = next(n for n in cfg.nodes if n.attr_writes)
        assert node.attr_writes[0].receiver == "d"
        assert node.attr_writes[0].attr == "seq"

    def test_nested_function_bodies_excluded(self):
        cfg = cfg_of("""
            def f(a):
                def inner():
                    raise RuntimeError
                return inner
        """)
        assert not any(
            n.stmt is not None and isinstance(n.stmt, ast.Raise)
            for n in cfg.nodes
        )


class _Reaching(Analysis):
    """Toy may-analysis: set of variables assigned a constant."""

    def initial(self, cfg):
        return frozenset()

    def join(self, states):
        return frozenset().union(*states)

    def transfer(self, node, state):
        out = set(state) - set(node.defs)
        stmt = node.stmt
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.targets[0], ast.Name)
        ):
            out.add(stmt.targets[0].id)
        result = frozenset(out)
        return result, result


class TestSolver:
    def test_branches_join_at_merge_point(self):
        cfg = cfg_of("""
            def f(a):
                if a:
                    x = 1
                else:
                    y = 2
                return a
        """)
        states = solve(cfg, _Reaching())
        ret = next(
            n for n in cfg.nodes
            if n.stmt is not None and isinstance(n.stmt, ast.Return)
        )
        assert states[ret.index] == frozenset({"x", "y"})

    def test_loop_reaches_fixpoint(self):
        cfg = cfg_of("""
            def f(items):
                for item in items:
                    x = 1
                return items
        """)
        states = solve(cfg, _Reaching())
        ret = next(
            n for n in cfg.nodes
            if n.stmt is not None and isinstance(n.stmt, ast.Return)
        )
        assert "x" in states[ret.index]
        assert "x" in states[cfg.exit]


def table_in(tmp_path, tree):
    """Write a package tree to disk and build its symbol table.

    Real files matter: module names are derived from the package
    structure on disk.
    """
    files = []
    for relpath, source in sorted(tree.items()):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        files.append((str(path), path.read_text()))
    return build_symbol_table(files)


class TestEffects:
    def test_direct_raise_and_callee_raise_chain(self, tmp_path):
        table = table_in(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def fails(a):
                    raise ValueError(a)

                def caller(a):
                    return fails(a)
            """,
        })
        effects = compute_effects(table)
        assert effects["pkg.mod.fails"].may_raise
        chain = effects["pkg.mod.caller"].may_raise
        assert chain is not None
        assert "calls pkg.mod.fails" in chain[0]

    def test_param_mutation_summary(self, tmp_path):
        table = table_in(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def stamp(desc):
                    desc.seq = 1
            """,
        })
        effects = compute_effects(table)
        assert 0 in effects["pkg.mod.stamp"].mutates_params

    def test_unary_send_is_a_handoff_multiarg_is_not(self, tmp_path):
        table = table_in(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def unary(chan, msg):
                    chan.send(msg)

                def bus_style(bus, source, dest, msg):
                    bus.send(source, dest, msg)
            """,
        })
        effects = compute_effects(table)
        assert 1 in effects["pkg.mod.unary"].sends_params
        assert not effects["pkg.mod.bus_style"].sends_params

    def test_handoff_methods_hand_over_first_arg_regardless_of_arity(
        self, tmp_path
    ):
        table = table_in(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def out(nf, desc):
                    nf.send_out(desc, 3)
            """,
        })
        effects = compute_effects(table)
        assert 1 in effects["pkg.mod.out"].sends_params

    def test_instrumentation_modules_contribute_no_effects(self, tmp_path):
        table = table_in(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/analysis/__init__.py": "",
            "pkg/analysis/check.py": """
                def noisy(x):
                    raise ValueError
            """,
        })
        effects = compute_effects(table)
        assert effects["pkg.analysis.check.noisy"].may_raise is None
