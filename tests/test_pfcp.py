"""Tests for the PFCP (N4) TLV codecs, messages, and builders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pfcp import (
    ACCESS,
    ACTION_BUFF,
    ACTION_FORW,
    ACTION_NOCP,
    CAUSE_ACCEPTED,
    CORE,
    AssociationSetupRequest,
    HeartbeatRequest,
    PFCPHeader,
    SessionEstablishmentRequest,
    SessionModificationRequest,
    SessionReportRequest,
    build_buffering_update,
    build_downlink_report,
    build_forward_update,
    build_path_switch,
    build_session_establishment,
    decode_ies,
    decode_message,
    encode_ies,
    ies,
)


class TestHeader:
    def test_session_header_roundtrip(self):
        header = PFCPHeader(message_type=52, seid=0xABCDEF, sequence=777)
        decoded, rest = PFCPHeader.unpack(header.pack(0))
        assert decoded.message_type == 52
        assert decoded.seid == 0xABCDEF
        assert decoded.sequence == 777
        assert rest == b""

    def test_node_header_has_no_seid(self):
        header = PFCPHeader(message_type=1, seid=None, sequence=3)
        raw = header.pack(0)
        decoded, _ = PFCPHeader.unpack(raw)
        assert decoded.seid is None
        assert len(raw) == 8

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            PFCPHeader.unpack(b"\x21\x34")

    def test_wrong_version_raises(self):
        raw = bytearray(PFCPHeader(message_type=1).pack(0))
        raw[0] = 0x40
        with pytest.raises(ValueError):
            PFCPHeader.unpack(bytes(raw))


class TestScalarIEs:
    @pytest.mark.parametrize(
        "ie",
        [
            ies.CauseIE(cause=CAUSE_ACCEPTED),
            ies.NodeIdIE(address=0xC0A80101),
            ies.FSeidIE(seid=99, address=0x0A000001),
            ies.PdrIdIE(rule_id=12),
            ies.FarIdIE(rule_id=3),
            ies.QerIdIE(rule_id=4),
            ies.PrecedenceIE(precedence=255),
            ies.SourceInterfaceIE(interface=CORE),
            ies.DestinationInterfaceIE(interface=ACCESS),
            ies.FTeidIE(teid=0xDEAD, address=7, choose=False),
            ies.FTeidIE(teid=0, address=7, choose=True),
            ies.UeIpAddressIE(address=5, source_or_destination=1),
            ies.NetworkInstanceIE(instance="internet"),
            ies.QfiIE(qfi=9),
            ies.ApplyActionIE(flags=ACTION_FORW | ACTION_BUFF),
            ies.OuterHeaderCreationIE(teid=1, address=2),
            ies.OuterHeaderRemovalIE(),
            ies.ReportTypeIE(dldr=True),
        ],
        ids=lambda ie: type(ie).__name__,
    )
    def test_roundtrip(self, ie):
        decoded = decode_ies(ie.encode())
        assert len(decoded) == 1
        assert decoded[0] == ie

    def test_sdf_filter_full_roundtrip(self):
        sdf = ies.SdfFilterIE(
            flow_description="permit out 17 from 8.8.8.8 to assigned",
            tos=0x2800,
            spi=12345,
            flow_label=0x0ABCD,
            filter_id=42,
        )
        (decoded,) = decode_ies(sdf.encode())
        assert decoded == sdf

    def test_apply_action_flags(self):
        action = ies.ApplyActionIE(flags=ACTION_BUFF | ACTION_NOCP)
        assert action.buffer and action.notify_cp
        assert not action.forward and not action.drop

    def test_unknown_ie_skipped(self):
        unknown = (60000).to_bytes(2, "big") + (2).to_bytes(2, "big") + b"xy"
        known = ies.PdrIdIE(rule_id=5).encode()
        decoded = decode_ies(unknown + known)
        assert len(decoded) == 1
        assert decoded[0].rule_id == 5

    def test_truncated_body_raises(self):
        raw = ies.PdrIdIE(rule_id=5).encode()[:-1]
        with pytest.raises(ValueError):
            decode_ies(raw)


class TestGroupedIEs:
    def test_nested_roundtrip(self):
        pdi = ies.PdiIE(
            children=[
                ies.SourceInterfaceIE(interface=ACCESS),
                ies.FTeidIE(teid=0x100, address=1),
            ]
        )
        create = ies.CreatePdrIE(
            children=[ies.PdrIdIE(rule_id=1), pdi, ies.FarIdIE(rule_id=2)]
        )
        (decoded,) = decode_ies(create.encode())
        assert isinstance(decoded, ies.CreatePdrIE)
        nested = decoded.child(ies.PdiIE)
        assert nested.child(ies.FTeidIE).teid == 0x100

    def test_children_of(self):
        group = ies.CreateFarIE(
            children=[ies.FarIdIE(rule_id=1), ies.FarIdIE(rule_id=2)]
        )
        assert len(group.children_of(ies.FarIdIE)) == 2


class TestMessages:
    def test_establishment_roundtrip(self):
        message = build_session_establishment(
            seid=4,
            sequence=9,
            ue_ip=0x0A3C0002,
            upf_address=1,
            ul_teid=0x40,
            gnb_address=2,
            dl_teid=0x41,
        )
        decoded = decode_message(message.encode())
        assert isinstance(decoded, SessionEstablishmentRequest)
        assert decoded.seid == 4 and decoded.sequence == 9
        assert len(decoded.find_all(ies.CreatePdrIE)) == 2
        assert len(decoded.find_all(ies.CreateFarIE)) == 2

    def test_node_message_roundtrip(self):
        decoded = decode_message(AssociationSetupRequest(sequence=1).encode())
        assert isinstance(decoded, AssociationSetupRequest)

    def test_unknown_message_type_raises(self):
        raw = bytearray(HeartbeatRequest().encode())
        raw[1] = 250
        with pytest.raises(ValueError):
            decode_message(bytes(raw))

    def test_handler_times_ordering(self):
        """Establishment > modification > report (rule-install work)."""
        assert (
            SessionEstablishmentRequest.HANDLER_TIME
            > SessionModificationRequest.HANDLER_TIME
            > SessionReportRequest.HANDLER_TIME
        )

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=2**24 - 1),
    )
    def test_header_roundtrip_property(self, seid, sequence):
        header = PFCPHeader(message_type=52, seid=seid, sequence=sequence)
        decoded, _ = PFCPHeader.unpack(header.pack(0))
        assert decoded.seid == seid and decoded.sequence == sequence


class TestBuilders:
    def test_buffering_update_piggybacks_choose(self):
        """§3.3: the buffering IE rides the TEID-allocation message."""
        message = build_buffering_update(
            seid=1, sequence=2, notify_cp=True,
            choose_new_teid=True, upf_address=9,
        )
        decoded = decode_message(message.encode())
        far = decoded.find(ies.UpdateFarIE)
        action = far.child(ies.ApplyActionIE)
        assert action.buffer and action.notify_cp
        fteid = decoded.find(ies.FTeidIE)
        assert fteid is not None and fteid.choose

    def test_path_switch_targets_new_gnb(self):
        message = build_path_switch(
            seid=1, sequence=2, new_gnb_address=0xC0A80202,
            new_dl_teid=0x777,
        )
        far = message.find(ies.UpdateFarIE)
        params = far.child(ies.ForwardingParametersIE)
        outer = params.child(ies.OuterHeaderCreationIE)
        assert outer.teid == 0x777
        assert outer.address == 0xC0A80202
        assert far.child(ies.ApplyActionIE).forward

    def test_forward_update_is_path_switch(self):
        message = build_forward_update(
            seid=1, sequence=2, gnb_address=5, dl_teid=6
        )
        assert message.find(ies.UpdateFarIE) is not None

    def test_downlink_report(self):
        message = build_downlink_report(seid=3, sequence=4)
        decoded = decode_message(message.encode())
        assert isinstance(decoded, SessionReportRequest)
        assert decoded.find(ies.ReportTypeIE).dldr
        report = decoded.find(ies.DownlinkDataReportIE)
        assert report.child(ies.PdrIdIE).rule_id == 2
