"""W001–W004 semantic checks on seeded fixtures plus regression tests
for the true positives they surfaced in the real tree."""

import os
import textwrap

from repro.analysis.program import Budget, analyze_program

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_pkg(tmp_path, files):
    out = []
    for relpath, source in sorted(files.items()):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        out.append((str(path), path.read_text()))
    return out


def run_checks(tmp_path, files, budget=None, entry_points=None):
    report = analyze_program(
        write_pkg(tmp_path, files), budget=budget, entry_points=entry_points
    )
    return report


def codes(report):
    return [f.code for f in report.findings]


class TestW001HotPathBudget:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/up/__init__.py": "",
        "pkg/up/mod.py": """
            class UPF:
                def process(self, pkt):
                    return self._helper(pkt)

                def _helper(self, pkt):
                    return [pkt]
        """,
    }
    ENTRY = "pkg.up.mod.UPF.process"

    def test_allocation_below_entry_point_flagged_with_chain(self, tmp_path):
        report = run_checks(
            tmp_path, self.FILES, entry_points=[self.ENTRY]
        )
        assert codes(report) == ["W001"]
        finding = report.findings[0]
        assert "allocation site" in finding.message
        assert "list-display" in finding.message
        # Call-chain evidence: entry point down to the allocating helper.
        assert finding.chain == (
            "-> pkg.up.mod.UPF.process",
            "-> pkg.up.mod.UPF._helper",
        )

    def test_budget_entry_absorbs_intentional_allocation(self, tmp_path):
        budget = Budget(budgets={"pkg.up.mod.UPF._helper": 1})
        report = run_checks(
            tmp_path, self.FILES, budget=budget, entry_points=[self.ENTRY]
        )
        assert codes(report) == []

    def test_function_off_the_hot_path_is_free(self, tmp_path):
        files = dict(self.FILES)
        files["pkg/up/mod.py"] = """
            class UPF:
                def process(self, pkt):
                    return self._helper(pkt)

                def _helper(self, pkt):
                    return [pkt]

            def cold():
                return [1, 2, 3]
        """
        report = run_checks(tmp_path, files, entry_points=[self.ENTRY])
        assert codes(report) == ["W001"]  # still only _helper

    def test_stale_budget_entry_reported(self, tmp_path):
        budget = Budget(budgets={"pkg.up.mod.UPF.gone": 1})
        report = run_checks(
            tmp_path, self.FILES, budget=budget, entry_points=[self.ENTRY]
        )
        assert report.stale_budget_entries == ["pkg.up.mod.UPF.gone"]


class TestW002InterproceduralEpochBump:
    def test_callee_side_mutation_without_bump(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Session:
                    def _install(self, k, v):
                        self.pdrs[k] = v

                    def public(self, k, v):
                        self._install(k, v)
            """,
        }, entry_points=[])
        assert codes(report) == ["W002"]
        finding = report.findings[0]
        assert ".pdrs" in finding.message
        assert "bump" in finding.message
        # Chain: the event-loop entry, the call into the helper, the site.
        assert finding.chain[0] == "-> pkg.mod.Session.public"
        assert any("_install" in step for step in finding.chain)
        assert finding.line == 4  # the mutation, not the call

    def test_caller_side_bump_discharges_helper_mutation(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Session:
                    def _install(self, k, v):
                        self.pdrs[k] = v

                    def public(self, k, v):
                        self._install(k, v)
                        self.epoch.bump()
            """,
        }, entry_points=[])
        assert codes(report) == []

    def test_bump_on_only_one_branch_is_flagged(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Session:
                    def public(self, k, v, fast):
                        self.pdrs[k] = v
                        if fast:
                            return
                        self.epoch.bump()
            """,
        }, entry_points=[])
        assert codes(report) == ["W002"]

    def test_bump_via_callee_that_always_bumps(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Session:
                    def _publish(self):
                        self.epoch.bump()

                    def public(self, k, v):
                        self.pdrs[k] = v
                        self._publish()
            """,
        }, entry_points=[])
        assert codes(report) == []

    def test_yield_with_pending_mutation(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Session:
                    def stepper(self, k, v):
                        self.pdrs[k] = v
                        yield
                        self.epoch.bump()
            """,
        }, entry_points=[])
        assert codes(report) == ["W002"]
        assert "yield" in report.findings[0].message

    def test_init_population_is_exempt(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Session:
                    def __init__(self):
                        self.pdrs = {}
                        self.pdrs[0] = None
            """,
        }, entry_points=[])
        assert codes(report) == []


class TestW003YieldInAtomic:
    def test_helper_hidden_yield_in_atomic_section(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class NF:
                    def run(self, detector):
                        with detector.role("upf-u"):
                            return list(self._work())

                    def _work(self):
                        yield 1
            """,
        }, entry_points=[])
        assert codes(report) == ["W003"]
        finding = report.findings[0]
        assert "_work" in finding.message
        assert any("_work" in step for step in finding.chain)

    def test_direct_yield_in_atomic_section(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class NF:
                    def run(self, detector):
                        with detector.role("upf-u"):
                            yield 1
            """,
        }, entry_points=[])
        assert codes(report) == ["W003"]
        assert "must not suspend" in report.findings[0].message

    def test_non_yielding_section_is_clean(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class NF:
                    def run(self, detector):
                        with detector.role("upf-u"):
                            return self._work()

                    def _work(self):
                        return 1
            """,
        }, entry_points=[])
        assert codes(report) == []


class TestW004Layering:
    def test_sim_importing_up_is_flagged(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sim/__init__.py": "",
            "pkg/sim/engine.py": "from ..up import session\n",
            "pkg/up/__init__.py": "",
            "pkg/up/session.py": "",
        }, entry_points=[])
        assert codes(report) == ["W004"]
        assert "sim" in report.findings[0].message

    def test_cross_plane_submodule_import_flagged(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up/__init__.py": "",
            "pkg/up/mod.py": "from ..cp.core import thing\n",
            "pkg/cp/__init__.py": "",
            "pkg/cp/core.py": "thing = 1\n",
        }, entry_points=[])
        assert codes(report) == ["W004"]
        assert "internals" in report.findings[0].message

    def test_cross_plane_facade_import_allowed(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cp/__init__.py": "",
            "pkg/cp/core.py": "from ..up import Session\n",
            "pkg/up/__init__.py": "from .session import Session\n",
            "pkg/up/session.py": "class Session:\n    pass\n",
        }, entry_points=[])
        assert codes(report) == []

    def test_hot_path_importing_instrumentation_flagged(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up/__init__.py": "",
            "pkg/up/mod.py": "from ..analysis import races\n",
            "pkg/analysis/__init__.py": "",
            "pkg/analysis/races.py": "",
        }, entry_points=[])
        assert codes(report) == ["W004"]
        assert "instrumentation" in report.findings[0].message

    def test_noqa_suppresses_a_layering_finding(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up/__init__.py": "",
            "pkg/up/mod.py": (
                "from ..analysis import races  "
                "# repro: noqa[W004] -- gated instrumentation\n"
            ),
            "pkg/analysis/__init__.py": "",
            "pkg/analysis/races.py": "",
        }, entry_points=[])
        assert codes(report) == []


def _load_repo_files(*relpaths):
    files = []
    for relpath in relpaths:
        path = os.path.join(REPO_ROOT, relpath)
        with open(path, "r", encoding="utf-8") as handle:
            files.append((path, handle.read()))
    return files


class TestRealTreeRegressions:
    """The true positives this analysis surfaced stay fixed."""

    def test_remove_pdr_bumps_on_every_path(self):
        # remove_pdr used to pop before the membership check, leaving
        # the no-bump early return with the container already touched.
        files = _load_repo_files(
            "src/repro/up/__init__.py",
            "src/repro/up/session.py",
            "src/repro/up/flow_cache.py",
        )
        report = analyze_program(files, entry_points=[])
        w002 = [f for f in report.findings if f.code == "W002"]
        assert w002 == []

    def test_core5g_uses_the_up_facade(self):
        # cp/core5g.py used to import up submodules directly.
        files = _load_repo_files("src/repro/cp/core5g.py")
        report = analyze_program(files, entry_points=[])
        w004 = [f for f in report.findings if f.code == "W004"]
        assert w004 == []
        edges = report.table.modules["repro.cp.core5g"].import_edges
        targets = {target for target, _ in edges}
        assert "repro.up" in targets
        assert not any(t.startswith("repro.up.") for t in targets)

    def test_full_tree_is_clean_against_committed_config(self):
        src = os.path.join(REPO_ROOT, "src", "repro")
        files = []
        for root, dirs, names in os.walk(src):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for name in sorted(names):
                if name.endswith(".py"):
                    path = os.path.join(root, name)
                    with open(path, "r", encoding="utf-8") as handle:
                        files.append((path, handle.read()))
        budget = Budget.load(os.path.join(REPO_ROOT, "analysis-budget.json"))
        report = analyze_program(files, budget=budget)
        assert report.stale_budget_entries == []
        # The one baselined intentional finding: sim's race-hook import.
        paths = {os.path.relpath(f.path, REPO_ROOT) for f in report.findings}
        assert paths <= {"src/repro/sim/engine.py"}
        assert [f.code for f in report.findings] in ([], ["W004"])

    def test_hot_path_covers_the_packet_pipeline(self):
        src = os.path.join(REPO_ROOT, "src", "repro", "up")
        files = []
        for root, _, names in os.walk(src):
            for name in sorted(names):
                if name.endswith(".py"):
                    path = os.path.join(root, name)
                    with open(path, "r", encoding="utf-8") as handle:
                        files.append((path, handle.read()))
        report = analyze_program(files)
        assert "repro.up.upf_u.UPFUserPlane._pipeline" in report.hot_path
        assert "repro.up.session.packet_key" in report.hot_path
        assert "repro.up.flow_cache.FlowCache.lookup" in report.hot_path
