"""Tests for the shared memory pool and its security domain."""

import pytest

from repro.core import (
    AccessDeniedError,
    PacketAction,
    PoolExhaustedError,
    SharedMemoryPool,
)


class TestAllocation:
    def test_alloc_free_cycle(self):
        pool = SharedMemoryPool(size=4)
        descriptor = pool.alloc(payload="packet")
        assert descriptor.payload == "packet"
        assert pool.available == 3
        descriptor.free()
        assert pool.available == 4

    def test_exhaustion(self):
        pool = SharedMemoryPool(size=2)
        pool.alloc()
        pool.alloc()
        with pytest.raises(PoolExhaustedError):
            pool.alloc()
        assert pool.alloc_failures == 1

    def test_alloc_resets_descriptor(self):
        pool = SharedMemoryPool(size=1)
        descriptor = pool.alloc("first")
        descriptor.set_action(PacketAction.TO_NF, 7)
        descriptor.meta["stale"] = True
        descriptor.free()
        fresh = pool.alloc("second")
        assert fresh.payload == "second"
        assert fresh.action == PacketAction.DROP
        assert fresh.meta == {}

    def test_double_free_raises(self):
        pool = SharedMemoryPool(size=1)
        descriptor = pool.alloc()
        descriptor.free()
        with pytest.raises(ValueError):
            pool.free(descriptor)

    def test_foreign_descriptor_rejected(self):
        pool_a = SharedMemoryPool(size=1)
        pool_b = SharedMemoryPool(size=1)
        descriptor = pool_a.alloc()
        with pytest.raises(ValueError):
            pool_b.free(descriptor)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SharedMemoryPool(size=0)


class TestSecurityDomain:
    def test_matching_prefix_attaches(self):
        pool = SharedMemoryPool(file_prefix="operator-a")
        pool.attach("amf", "operator-a")
        assert pool.is_attached("amf")

    def test_foreign_prefix_denied(self):
        """§3.2: an NF of another operator cannot join the pool."""
        pool = SharedMemoryPool(file_prefix="operator-a")
        with pytest.raises(AccessDeniedError):
            pool.attach("evil-nf", "operator-b")
        assert not pool.is_attached("evil-nf")

    def test_distinct_pools_per_instance(self):
        pool_a = SharedMemoryPool(file_prefix="l25gc-unit-1")
        pool_b = SharedMemoryPool(file_prefix="l25gc-unit-2")
        pool_a.attach("upf", "l25gc-unit-1")
        with pytest.raises(AccessDeniedError):
            pool_b.attach("upf", "l25gc-unit-1")


class TestDescriptor:
    def test_set_action_chainable(self):
        pool = SharedMemoryPool(size=1)
        descriptor = pool.alloc()
        result = descriptor.set_action(PacketAction.OUT, 1)
        assert result is descriptor
        assert descriptor.action == PacketAction.OUT
        assert descriptor.destination == 1

    def test_unknown_action_rejected(self):
        pool = SharedMemoryPool(size=1)
        with pytest.raises(ValueError):
            pool.alloc().set_action("teleport")
