"""Burst-mode UPF-U data plane: unit, property, and platform tests.

The invariant that matters: **``process_burst`` is observationally
identical to one-at-a-time ``process``** — same per-packet outcomes,
bit-identical :class:`ForwardingStats`, identical URR byte counts, and
identical flow-cache contents — over any interleaving of packets and
rule mutations and any burst partition.  The property test replays
randomized op sequences against a sequential stack and a burst stack
(same oracle pattern as ``test_up_flow_cache``); the unit tests pin
down each burst-specific mechanism (bulk probe, grouped resolution,
LRU replay, run-splitting on a mid-burst epoch bump) individually.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import races
from repro.classifier import LinearClassifier, PartitionSortClassifier
from repro.cp import FiveGCore, ProcedureRunner, SystemConfig
from repro.deploy.sharded import ShardedUserPlane
from repro.net import Direction, FiveTuple, Packet
from repro.sim import MS, Environment
from repro.up import (
    FAR,
    FARAction,
    FlowCache,
    RuleEpoch,
    SessionTable,
    UPFUserPlane,
    packet_key,
    packet_keys,
)

from .test_up_flow_cache import dl_packet, make_session, ul_packet

DN_IP = 0x08080808
UE_BASE = 0x0A3C0000


def build_pair(flow_cache=True, capacity=8, qer=False, urr=False, seids=(1,)):
    """Two identical stacks: one driven sequentially, one by bursts."""
    stacks = []
    for _ in range(2):
        table = SessionTable()
        upf = UPFUserPlane(
            Environment(),
            table,
            flow_cache=flow_cache,
            flow_cache_capacity=capacity,
        )
        for seid in seids:
            table.add(make_session(seid, LinearClassifier, qer=qer, urr=urr))
        stacks.append((table, upf))
    return stacks[0], stacks[1]


def assert_equivalent(seq, bur, check_counters=True):
    """Sequential stack and burst stack ended in the same state."""
    (seq_table, seq_upf), (bur_table, bur_upf) = seq, bur
    assert seq_upf.stats == bur_upf.stats
    if seq_upf.flow_cache is not None:
        sc, bc = seq_upf.flow_cache, bur_upf.flow_cache
        assert list(sc._entries) == list(bc._entries)
        if check_counters:
            for name in ("hits", "misses", "stale", "inserts", "evictions",
                         "purged"):
                assert getattr(sc, name) == getattr(bc, name), name


# ----------------------------------------------------------------------
# packet_keys (vectorized key build)
# ----------------------------------------------------------------------
class TestPacketKeys:
    def test_matches_packet_key_per_packet(self):
        packets = [ul_packet(1), dl_packet(2), ul_packet(3, src_port=9)]
        assert packet_keys(packets) == [packet_key(p) for p in packets]

    def test_teidless_uplink_yields_none(self):
        packet = ul_packet(1)
        packet.teid = None
        assert packet_keys([packet]) == [None]

    def test_meta_fields_included(self):
        packet = dl_packet(1)
        packet.meta["app_id"] = 5
        [key] = packet_keys([packet])
        assert key == packet_key(packet)
        plain = dl_packet(1)
        assert key != packet_key(plain)

    def test_empty(self):
        assert packet_keys([]) == []


# ----------------------------------------------------------------------
# FlowCache burst primitives
# ----------------------------------------------------------------------
class TestFlowCacheBurstOps:
    def test_lookup_many_probes_without_side_effects(self):
        epoch = RuleEpoch()
        cache = FlowCache(epoch, capacity=4)
        cache.insert("a", None, 1, None)
        cache.insert("b", None, 2, None)
        epoch.bump()
        cache.insert("c", None, 3, None)
        found, stale = cache.lookup_many(["a", "b", "c", "d"])
        assert set(found) == {"c"} and stale == {"a", "b"}
        # No counters moved, no LRU movement, stale entries left in place.
        assert (cache.hits, cache.misses, cache.stale) == (0, 0, 0)
        assert list(cache._entries) == ["a", "b", "c"]

    def test_commit_burst_replays_sequentially(self):
        """commit_burst == the same key sequence via lookup/insert."""
        epoch_a, epoch_b = RuleEpoch(), RuleEpoch()
        seq = FlowCache(epoch_a, capacity=2)
        bur = FlowCache(epoch_b, capacity=2)
        for cache in (seq, bur):
            cache.insert("a", None, 1, None)
        keys = ["a", "b", "a", "c", "b"]
        resolved = {
            key: entry
            for key, entry in (
                (k, type(seq._entries["a"])(0, None, k, None, None, None))
                for k in ("b", "c")
            )
        }
        for key in keys:  # sequential oracle
            if seq.lookup(key) is None and key in resolved:
                decision = resolved[key]
                seq.insert(key, decision.session, decision.pdr,
                           decision.far, decision.enforcer, decision.counter)
        bur.commit_burst(keys, resolved)
        assert list(seq._entries) == list(bur._entries)
        assert (seq.hits, seq.misses, seq.evictions) == (
            bur.hits, bur.misses, bur.evictions)
        # inserts diverge only through FlowCacheEntry construction in
        # insert(); the counter itself must match.
        assert seq.inserts == bur.inserts

    def test_commit_burst_skips_none_keys(self):
        cache = FlowCache(RuleEpoch(), capacity=4)
        cache.commit_burst([None, None], {})
        assert (cache.hits, cache.misses) == (0, 0)

    def test_touch_burst_orders_by_last_occurrence(self):
        seq = FlowCache(RuleEpoch(), capacity=4)
        bur = FlowCache(RuleEpoch(), capacity=4)
        for cache in (seq, bur):
            for key in ("a", "b", "c"):
                cache.insert(key, None, key, None)
        touches = ["b", "a", "b", "c", "a"]
        for key in touches:
            seq.lookup(key)
        # Distinct keys in last-occurrence order: b, c, a.
        bur.touch_burst(["b", "c", "a"], hits=len(touches))
        assert list(seq._entries) == list(bur._entries) == ["b", "c", "a"]
        assert seq.hits == bur.hits == 5


# ----------------------------------------------------------------------
# process_burst unit behaviour
# ----------------------------------------------------------------------
class TestProcessBurst:
    def test_empty_burst(self):
        (_, upf), _ = build_pair()
        assert upf.process_burst([]) == []
        assert upf.stats.forwarded == 0

    def test_singleton_equals_process(self):
        (_, seq_upf), (_, bur_upf) = seq, bur = build_pair()
        assert seq_upf.process(ul_packet(1)) == "forwarded-ul"
        assert bur_upf.process_burst([ul_packet(1)]) == ["forwarded-ul"]
        assert_equivalent(seq, bur)

    def test_burst_of_distinct_flows_fills_then_hits(self):
        (_, upf), _ = build_pair()
        burst = [ul_packet(1, src_port=4000 + i) for i in range(4)]
        assert upf.process_burst(burst) == ["forwarded-ul"] * 4
        assert upf.flow_cache.inserts == 4
        again = [ul_packet(1, src_port=4000 + i) for i in range(4)]
        assert upf.process_burst(again) == ["forwarded-ul"] * 4
        assert upf.flow_cache.hits == 4

    def test_repeated_flow_resolves_once_per_burst(self):
        """One classifier lookup per distinct flow, however many packets."""
        (_, upf), _ = build_pair()
        burst = [ul_packet(1) for _ in range(8)]
        upf.process_burst(burst)
        assert upf.flow_cache.inserts == 1
        # Replay in arrival order: the first packet misses and fills,
        # the other seven hit the fresh entry — same as sequential.
        assert upf.flow_cache.misses == 1
        assert upf.flow_cache.hits == 7
        assert upf.stats.forwarded_ul == 8

    def test_cache_off_burst_equals_sequential(self):
        seq, bur = build_pair(flow_cache=False)
        packets = [ul_packet(1), dl_packet(1), ul_packet(1, src_port=7)]
        seq_out = [seq[1].process(p) for p in packets]
        bur_out = bur[1].process_burst(
            [ul_packet(1), dl_packet(1), ul_packet(1, src_port=7)]
        )
        assert seq_out == bur_out
        assert_equivalent(seq, bur)

    def test_teidless_uplink_mid_burst(self):
        (_, upf), _ = build_pair()
        bare = ul_packet(1)
        bare.teid = None
        out = upf.process_burst([ul_packet(1), bare, dl_packet(1)])
        assert out == ["forwarded-ul", "drop-no-session", "forwarded-dl"]
        assert len(upf.flow_cache) == 2  # the bare packet bypassed it

    def test_qer_policing_order_within_burst(self):
        """The MBR bucket drains packet-by-packet inside a burst."""
        (_, seq_upf), (_, bur_upf) = seq, bur = build_pair(qer=True)
        seq_out = [seq_upf.process(ul_packet(1)) for _ in range(5)]
        bur_out = bur_upf.process_burst([ul_packet(1) for _ in range(5)])
        assert seq_out == bur_out == ["forwarded-ul"] * 3 + ["drop-qos"] * 2
        assert_equivalent(seq, bur)

    def test_urr_accounting_within_burst(self):
        (seq_table, seq_upf), (bur_table, bur_upf) = seq, bur = build_pair(
            urr=True
        )
        for _ in range(4):
            seq_upf.process(ul_packet(1))
        bur_upf.process_burst([ul_packet(1) for _ in range(4)])
        for table in (seq_table, bur_table):
            session = table.by_seid(1)
            assert session.usage_counters[1].uplink_bytes == 400
        assert seq_upf.stats.usage_reports == bur_upf.stats.usage_reports == 1
        assert_equivalent(seq, bur)

    def test_buffering_notifies_once_per_episode(self):
        (seq_table, seq_upf), (bur_table, bur_upf) = seq, bur = build_pair()
        for table in (seq_table, bur_table):
            table.by_seid(1).update_far(
                FAR(
                    far_id=2,
                    action=FARAction(
                        forward=False, buffer=True, notify_cp=True
                    ),
                )
            )
        seq_out = [seq_upf.process(dl_packet(1)) for _ in range(3)]
        bur_out = bur_upf.process_burst([dl_packet(1) for _ in range(3)])
        assert seq_out == bur_out == ["buffered"] * 3
        assert seq_upf.stats.notifications == bur_upf.stats.notifications == 1
        assert_equivalent(seq, bur)

    def test_lru_eviction_order_matches_sequential(self):
        seq, bur = build_pair(capacity=2, seids=(1, 2, 3))
        packets = [dl_packet(1), dl_packet(2), dl_packet(1), dl_packet(3),
                   dl_packet(2)]
        seq_out = [seq[1].process(p) for p in packets]
        bur_out = bur[1].process_burst(
            [dl_packet(1), dl_packet(2), dl_packet(1), dl_packet(3),
             dl_packet(2)]
        )
        assert seq_out == bur_out
        assert seq[1].flow_cache.evictions == bur[1].flow_cache.evictions > 0
        assert_equivalent(seq, bur)

    def test_mid_burst_epoch_bump_splits_the_run(self):
        """A notify-CP callback that mutates rules mid-burst: the
        remaining packets must see the *new* rules, exactly as
        one-at-a-time processing would."""
        seq, bur = build_pair()

        def arm(table, upf):
            session = table.by_seid(1)
            session.update_far(
                FAR(
                    far_id=2,
                    action=FARAction(
                        forward=False, buffer=True, notify_cp=True
                    ),
                )
            )

            def on_notify(notified):
                # The CP reacts by switching the FAR to drop — an epoch
                # bump landing *between* packets of the burst.  Under
                # --race the rule write is the CP's, not the UPF-U's.
                detector = races.active()
                if detector is None:
                    notified.update_far(
                        FAR(far_id=9, action=FARAction(drop=True))
                    )
                else:
                    with detector.role("upf-c"):
                        notified.update_far(
                            FAR(far_id=9, action=FARAction(drop=True))
                        )

            upf.notify_cp = on_notify

        arm(*seq)
        arm(*bur)
        warm = [dl_packet(1)]  # cache the pre-bump decision
        seq_out = [seq[1].process(p) for p in warm]
        bur_out = bur[1].process_burst([dl_packet(1)])
        packets = 4
        seq_out += [seq[1].process(dl_packet(1)) for _ in range(packets)]
        bur_out += bur[1].process_burst(
            [dl_packet(1) for _ in range(packets)]
        )
        assert seq_out == bur_out
        # First post-warm packet buffers and notifies; the bump means
        # the rest re-resolve against the mutated session.
        assert seq_out[1] == "buffered"
        assert seq[1].stats == bur[1].stats
        # Cache *contents* stay identical; hit/miss accounting may
        # differ in the bump case (aborted-run commits re-observed as
        # stale), so only contents are asserted here.
        assert_equivalent(seq, bur, check_counters=False)

    def test_burst_size_validation(self):
        with pytest.raises(ValueError):
            UPFUserPlane(Environment(), SessionTable(), burst_size=0)

    def test_burst_size_arms_platform_burst_mode(self):
        upf = UPFUserPlane(Environment(), SessionTable(), burst_size=16)
        assert upf.burst_mode and upf.burst == 16
        plain = UPFUserPlane(Environment(), SessionTable())
        assert not plain.burst_mode


# ----------------------------------------------------------------------
# Property test: burst == sequential under random interleavings
# ----------------------------------------------------------------------
SEIDS = (1, 2, 3)

_burst_ops = st.lists(
    st.one_of(
        st.tuples(st.just("ul"), st.sampled_from(SEIDS), st.integers(1, 3)),
        st.tuples(st.just("dl"), st.sampled_from(SEIDS), st.integers(1, 3)),
        st.tuples(st.just("add"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("del"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("buffer-far"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("forward-far"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("drop-pdr"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("flush"), st.sampled_from(SEIDS), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


def _mutate(op, seid, table, upf):
    session = table.by_seid(seid)
    if op == "add":
        if session is None:
            table.add(
                make_session(seid, PartitionSortClassifier, qer=True,
                             urr=True)
            )
    elif op == "del":
        table.remove(seid)
    elif op == "buffer-far" and session is not None:
        session.update_far(
            FAR(
                far_id=2,
                action=FARAction(forward=False, buffer=True, notify_cp=True),
            )
        )
    elif op == "forward-far" and session is not None:
        session.update_far(FAR(far_id=2, action=FARAction(forward=True)))
    elif op == "drop-pdr" and session is not None:
        if 2 in session.pdrs:
            session.remove_pdr(2)
        else:
            fresh = make_session(seid, PartitionSortClassifier)
            session.install_pdr(fresh.pdrs[2])
    elif op == "flush" and session is not None:
        upf.flush_session(session)


def _packets_for(run, teidless_variant=3):
    out = []
    for op, seid, variant in run:
        if op == "ul":
            packet = ul_packet(seid, src_port=4000 + variant)
            if variant == teidless_variant:
                packet.teid = None  # exercise the cache-bypass lane
            out.append(packet)
        else:
            out.append(dl_packet(seid, src_port=80 + variant))
    return out


def _replay(ops, burst_limits, flow_cache):
    """Drive a sequential stack and a burst stack with the same script."""

    def build():
        table = SessionTable()
        upf = UPFUserPlane(
            Environment(), table, flow_cache=flow_cache,
            flow_cache_capacity=8,  # tiny: exercise LRU eviction too
        )
        return table, upf

    seq_table, seq_upf = build()
    bur_table, bur_upf = build()
    seq_out, bur_out = [], []
    i = 0
    limits = iter(burst_limits)
    while i < len(ops):
        op = ops[i][0]
        if op in ("ul", "dl"):
            limit = next(limits, 4)
            run = [ops[i]]
            i += 1
            while (i < len(ops) and ops[i][0] in ("ul", "dl")
                   and len(run) < limit):
                run.append(ops[i])
                i += 1
            for packet in _packets_for(run):
                seq_out.append(seq_upf.process(packet))
            bur_out.extend(bur_upf.process_burst(_packets_for(run)))
        else:
            _mutate(ops[i][0], ops[i][1], seq_table, seq_upf)
            _mutate(ops[i][0], ops[i][1], bur_table, bur_upf)
            i += 1
    assert seq_out == bur_out
    assert seq_upf.stats == bur_upf.stats
    for seid in SEIDS:  # identical URR byte counts
        seq_session = seq_table.by_seid(seid)
        bur_session = bur_table.by_seid(seid)
        assert (seq_session is None) == (bur_session is None)
        if seq_session is not None and 1 in seq_session.usage_counters:
            assert (
                seq_session.usage_counters[1].uplink_bytes
                == bur_session.usage_counters[1].uplink_bytes
            )
            assert (
                seq_session.usage_counters[1].downlink_bytes
                == bur_session.usage_counters[1].downlink_bytes
            )
    if flow_cache:
        sc, bc = seq_upf.flow_cache, bur_upf.flow_cache
        assert list(sc._entries) == list(bc._entries)
        for name in ("hits", "misses", "stale", "inserts", "evictions",
                     "purged"):
            assert getattr(sc, name) == getattr(bc, name), name


@settings(max_examples=60, deadline=None)
@given(_burst_ops, st.lists(st.integers(1, 9), max_size=30))
def test_burst_equals_sequential(ops, burst_limits):
    _replay(ops, burst_limits, flow_cache=True)


@settings(max_examples=30, deadline=None)
@given(_burst_ops, st.lists(st.integers(1, 9), max_size=30))
def test_burst_equals_sequential_cache_off(ops, burst_limits):
    _replay(ops, burst_limits, flow_cache=False)


# ----------------------------------------------------------------------
# Sharded burst dispatch
# ----------------------------------------------------------------------
class TestShardedBurst:
    def _sharded_and_plain(self, num_shards=4):
        from .test_sharded_up import make_session as make_steered
        from .test_sharded_up import dl_packet as sh_dl
        from .test_sharded_up import ul_packet as sh_ul

        sharded = ShardedUserPlane(
            Environment(), num_shards, flow_cache=True, burst_size=8
        )
        plain_table = SessionTable()
        plain = UPFUserPlane(Environment(), plain_table, flow_cache=True)
        for seid in (1, 2, 3, 4, 5):
            sharded.sessions.add(make_steered(seid))
            plain_table.add(make_steered(seid))
        return sharded, plain, sh_ul, sh_dl

    def test_burst_scatter_gather_matches_unsharded(self):
        sharded, plain, sh_ul, sh_dl = self._sharded_and_plain()
        script = [(d, seid) for seid in (1, 2, 3, 4, 5)
                  for d in ("ul", "dl", "ul")]

        def burst_of():
            return [
                sh_ul(seid) if d == "ul" else sh_dl(seid)
                for d, seid in script
            ]

        seq_out = [plain.process(p) for p in burst_of()]
        bur_out = sharded.process_burst(burst_of())
        assert seq_out == bur_out
        assert sharded.stats == plain.stats
        assert sum(sharded.dispatched) == len(script)
        # Every shard with sessions saw only its own keys.
        for shard in sharded.shards:
            for entry in shard.upf_u.flow_cache._entries.values():
                owner = sharded.sessions.shard_of(entry.session.seid)
                assert owner == shard.shard_id

    def test_sharded_burst_race_clean(self):
        env = Environment()
        from .test_sharded_up import make_session as make_steered
        from .test_sharded_up import dl_packet as sh_dl
        from .test_sharded_up import ul_packet as sh_ul

        with races.traced(env=env) as detector:
            sharded = ShardedUserPlane(env, 2, flow_cache=True, burst_size=8)
            with detector.role("upf-c"):
                for seid in (1, 2):
                    sharded.sessions.add(make_steered(seid))
            sharded.process_burst(
                [sh_ul(1), sh_dl(2), sh_ul(2), sh_dl(1)]
            )
        assert detector.violations == [], detector.report()


# ----------------------------------------------------------------------
# Full system: SystemConfig(burst_size=...) end to end
# ----------------------------------------------------------------------
class TestFullSystemBurst:
    def _core_with_burst(self, burst_size):
        env = Environment()
        config = SystemConfig.l25gc()
        config.flow_cache = True
        config.burst_size = burst_size
        core = FiveGCore(env, config)
        for gnb in core.gnbs.values():
            gnb.radio_latency = 0.0
        runner = ProcedureRunner(core)
        ue = core.add_ue("imsi-208930000009001")
        detail = {}

        def lifecycle():
            yield from runner.register_ue(ue, gnb_id=1)
            result = yield from runner.establish_session(ue)
            detail.update(result.detail)

        env.process(lifecycle())
        env.run()
        outcomes = core.inject_downlink_burst(
            [
                Packet(
                    direction=Direction.DOWNLINK,
                    flow=FiveTuple(
                        src_ip=1, dst_ip=detail["ue_ip"],
                        src_port=80, dst_port=4000 + (seq % 4),
                    ),
                    created_at=env.now,
                )
                for seq in range(40)
            ]
        )
        env.run()
        return core, ue, outcomes

    def test_burst32_delivery_identical_to_burst1(self):
        bur_core, bur_ue, bur_out = self._core_with_burst(32)
        seq_core, seq_ue, seq_out = self._core_with_burst(1)
        assert bur_out == seq_out == ["forwarded-dl"] * 40
        assert len(bur_ue.received) == len(seq_ue.received) == 40
        assert bur_core.upf_u.stats == seq_core.upf_u.stats


# ----------------------------------------------------------------------
# NF platform: burst_mode polling through the rings
# ----------------------------------------------------------------------
class TestPlatformBurstMode:
    def _platform(self, burst_size):
        from repro.core import NFManager
        from repro.pfcp.builder import build_session_establishment
        from repro.up import UPFControlPlane

        env = Environment()
        manager = NFManager(env, pool_size=4096)
        table = SessionTable()
        delivered = []
        upf_u = UPFUserPlane(
            env,
            table,
            service_id=2,
            downlink_sink=lambda p, t, a: delivered.append(p),
            flow_cache=True,
            burst_size=burst_size,
        )
        upf_c = UPFControlPlane(table, upf_u=upf_u, address=1)
        upf_c.handle(
            build_session_establishment(
                seid=1, sequence=1, ue_ip=UE_BASE + 1, upf_address=1,
                ul_teid=0x100, gnb_address=2, dl_teid=0x500,
            )
        )
        manager.register(upf_u)
        upf_u.start()
        manager.start()
        return env, manager, upf_u, delivered

    def _dl(self, seq):
        return Packet(
            size=128,
            seq=seq,
            direction=Direction.DOWNLINK,
            flow=FiveTuple(
                src_ip=1, dst_ip=UE_BASE + 1, src_port=80, dst_port=4000
            ),
        )

    @pytest.mark.parametrize("burst_size", [1, 32])
    def test_packets_flow_through_rings(self, burst_size):
        env, manager, upf_u, delivered = self._platform(burst_size)
        for seq in range(50):
            assert manager.inject(self._dl(seq), service_id=2)
        env.run(until=10 * MS)
        assert [p.seq for p in delivered] == list(range(50))
        assert upf_u.handled == 50
        assert manager.pool.in_use == 0

    def test_burst_timing_identical_to_sequential(self):
        """The burst branch charges the same summed processing time, so
        simulated completion is identical at any burst size."""
        done = {}
        for label, burst_size in (("seq", 1), ("bur", 32)):
            env, manager, upf_u, delivered = self._platform(burst_size)
            for seq in range(100):
                manager.inject(self._dl(seq), service_id=2)

            def watch(env=env, upf_u=upf_u, label=label):
                while upf_u.handled < 100:
                    yield env.timeout(1e-6)
                done[label] = env.now

            env.process(watch())
            env.run(until=50 * MS)
        assert done["seq"] == pytest.approx(done["bur"], abs=2e-6)
