"""Tests for the NAS byte codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ran import ngap
from repro.ran.nas_codec import (
    EPD_5GMM,
    EPD_5GSM,
    NASCodecError,
    decode_nas,
    encode_nas,
)

ROUNDTRIP_MESSAGES = [
    ngap.RegistrationRequest(supi="imsi-208930000000003"),
    ngap.RegistrationAccept(guti="5g-guti-20893cafe0000000042"),
    ngap.RegistrationComplete(),
    ngap.AuthenticationRequest(rand="ab" * 16, autn="cd" * 16),
    ngap.AuthenticationResponse(res_star="ef" * 16),
    ngap.SecurityModeCommand(ciphering="NEA2", integrity="NIA2"),
    ngap.SecurityModeComplete(),
    ngap.ServiceRequest(service_type="mobile-terminated-services"),
    ngap.ServiceAccept(),
    ngap.PDUSessionEstablishmentRequest(pdu_session_id=5, dnn="ims"),
    ngap.PDUSessionEstablishmentAccept(pdu_session_id=5, ue_ip="10.60.0.9"),
]


class TestRoundTrips:
    @pytest.mark.parametrize(
        "message", ROUNDTRIP_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_roundtrip(self, message):
        decoded = decode_nas(encode_nas(message))
        assert type(decoded) is type(message)

    def test_registration_fields(self):
        message = ngap.RegistrationRequest(
            supi="imsi-1", suci="suci-0-208-93-0000-0-0-0000000001",
            registration_type="mobility",
        )
        decoded = decode_nas(encode_nas(message))
        assert decoded.supi == "imsi-1"
        assert decoded.suci == message.suci
        assert decoded.registration_type == "mobility"

    def test_authentication_fields(self):
        message = ngap.AuthenticationRequest(rand="00ff" * 8, autn="11ee" * 8)
        decoded = decode_nas(encode_nas(message))
        assert decoded.rand == message.rand
        assert decoded.autn == message.autn

    def test_pdu_session_fields(self):
        message = ngap.PDUSessionEstablishmentAccept(
            pdu_session_id=9, ue_ip="10.60.1.2"
        )
        decoded = decode_nas(encode_nas(message))
        assert decoded.pdu_session_id == 9
        assert decoded.ue_ip == "10.60.1.2"

    def test_epd_split(self):
        mm = encode_nas(ngap.ServiceRequest())
        sm = encode_nas(ngap.PDUSessionEstablishmentRequest())
        assert mm[0] == EPD_5GMM
        assert sm[0] == EPD_5GSM


class TestErrors:
    def test_unknown_message_class(self):
        with pytest.raises(NASCodecError):
            encode_nas(ngap.NASMessage())

    def test_truncated_header(self):
        with pytest.raises(NASCodecError):
            decode_nas(b"\x7e")

    def test_unknown_type(self):
        with pytest.raises(NASCodecError):
            decode_nas(b"\x7e\x00\xff")

    def test_truncated_ie(self):
        raw = encode_nas(ngap.RegistrationAccept())
        with pytest.raises(NASCodecError):
            decode_nas(raw[:-1])

    @given(st.binary(max_size=64))
    def test_decode_never_crashes_unexpectedly(self, data):
        """Arbitrary bytes either decode or raise NASCodecError."""
        try:
            decode_nas(data)
        except NASCodecError:
            pass


class TestFuzzRoundtrip:
    @given(
        st.text(max_size=40),
        st.text(max_size=40),
        st.sampled_from(["initial", "mobility", "periodic"]),
    )
    def test_registration_roundtrip_property(self, supi, suci, reg_type):
        message = ngap.RegistrationRequest(
            supi=supi, suci=suci, registration_type=reg_type
        )
        decoded = decode_nas(encode_nas(message))
        assert decoded.supi == supi
        assert decoded.suci == suci
        assert decoded.registration_type == reg_type

    @given(st.integers(min_value=0, max_value=255), st.text(max_size=20))
    def test_pdu_request_roundtrip_property(self, session_id, dnn):
        message = ngap.PDUSessionEstablishmentRequest(
            pdu_session_id=session_id, dnn=dnn
        )
        decoded = decode_nas(encode_nas(message))
        assert decoded.pdu_session_id == session_id
        assert decoded.dnn == dnn
