"""End-to-end integration scenarios across subsystems."""

import pytest

from repro.cp import FiveGCore, ProcedureRunner, SystemConfig
from repro.net import Direction, FiveTuple, Packet, PacketKind
from repro.ran import CMState
from repro.sim import MS, Environment
from repro.traffic import ConstantRateGenerator, LatencySeries, summarize


class TestTwoUEsConcurrent:
    """The paper's control plane supports two users (§3.2) — run both
    through the full lifecycle concurrently and check isolation."""

    def test_concurrent_lifecycles(self):
        env = Environment()
        core = FiveGCore(env, SystemConfig.l25gc())
        runner = ProcedureRunner(core)
        ues = [core.add_ue(f"imsi-2089300000100{i:02d}") for i in range(2)]
        details = {}

        def lifecycle(ue, index):
            yield from runner.register_ue(ue, gnb_id=1)
            result = yield from runner.establish_session(ue)
            details[index] = result.detail
            yield from runner.handover(ue, target_gnb_id=2)

        for index, ue in enumerate(ues):
            env.process(lifecycle(ue, index))
        env.run()
        assert len(details) == 2
        assert details[0]["ue_ip"] != details[1]["ue_ip"]
        assert details[0]["seid"] != details[1]["seid"]
        assert all(ue.serving_gnb_id == 2 for ue in ues)
        assert len(core.sessions) == 2

    def test_traffic_isolated_per_ue(self):
        env = Environment()
        core = FiveGCore(env, SystemConfig.l25gc())
        for gnb in core.gnbs.values():
            gnb.radio_latency = 0.0
        runner = ProcedureRunner(core)
        ues = [core.add_ue(f"imsi-2089300000200{i:02d}") for i in range(2)]
        details = {}

        def lifecycle(ue, index):
            yield from runner.register_ue(ue, gnb_id=1)
            result = yield from runner.establish_session(ue)
            details[index] = result.detail

        for index, ue in enumerate(ues):
            env.process(lifecycle(ue, index))
        env.run()
        # Send 50 packets to UE 0 only.
        for _ in range(50):
            core.inject_downlink(Packet(
                direction=Direction.DOWNLINK,
                flow=FiveTuple(src_ip=1, dst_ip=details[0]["ue_ip"],
                               src_port=80, dst_port=4000),
                created_at=env.now,
            ))
        env.run()
        assert len(ues[0].received) == 50
        assert len(ues[1].received) == 0


class TestSteadyStateDataPlane:
    @pytest.mark.parametrize(
        "factory,expected_rtt",
        [(SystemConfig.free5gc, 116e-6), (SystemConfig.l25gc, 25e-6)],
        ids=["free5gc", "l25gc"],
    )
    def test_base_rtt_through_full_stack(self, factory, expected_rtt):
        """Generator -> UPF -> gNB -> UE, measured like the paper."""
        env = Environment()
        core = FiveGCore(env, factory())
        for gnb in core.gnbs.values():
            gnb.radio_latency = 0.0
        runner = ProcedureRunner(core)
        ue = core.add_ue("imsi-208930000003001")
        details = {}

        def setup():
            yield from runner.register_ue(ue)
            result = yield from runner.establish_session(ue)
            details.update(result.detail)

        env.process(setup())
        env.run()
        series = LatencySeries()
        original = ue.deliver

        def hook(packet, now):
            original(packet, now)
            series.record_one_way(packet)

        ue.deliver = hook
        ConstantRateGenerator(
            env,
            core.inject_downlink,
            rate_pps=5000,
            flow=FiveTuple(src_ip=1, dst_ip=details["ue_ip"],
                           src_port=80, dst_port=4000),
            duration=0.2,
        )
        env.run()
        summary = summarize(series)
        assert summary.base_rtt == pytest.approx(expected_rtt, rel=0.10)
        assert summary.elevated_count == 0  # steady state, no events


class TestIdleActiveDataCycle:
    def test_multiple_paging_cycles(self):
        """Idle -> page -> active, three times, without losing data."""
        env = Environment()
        core = FiveGCore(env, SystemConfig.l25gc())
        for gnb in core.gnbs.values():
            gnb.radio_latency = 0.0
        runner = ProcedureRunner(core)
        ue = core.add_ue("imsi-208930000004001")
        details = {}

        def setup():
            yield from runner.register_ue(ue)
            result = yield from runner.establish_session(ue)
            details.update(result.detail)

        env.process(setup())
        env.run()

        def on_report(report):
            def page():
                yield from runner.page_ue(ue)

            env.process(page())

        core.on_report = on_report
        sent = 0
        for cycle in range(3):
            def idle():
                yield from runner.release_to_idle(ue)

            env.process(idle())
            env.run()
            assert ue.cm_state is CMState.IDLE
            for _ in range(10):
                core.inject_downlink(Packet(
                    direction=Direction.DOWNLINK,
                    flow=FiveTuple(src_ip=1, dst_ip=details["ue_ip"],
                                   src_port=80, dst_port=4000),
                    created_at=env.now,
                ))
                sent += 1
            env.run()
            assert ue.cm_state is CMState.CONNECTED
        assert len(ue.received) == sent


class TestResiliencyIntegration:
    def test_state_replicated_through_procedures(self):
        """Run real procedures, checkpoint AMF/SMF state to a remote
        replica, and verify the replica can serve the same contexts."""
        from repro.cp.nfs import AMF, SMF
        from repro.resiliency import ResiliencyFramework

        env = Environment()
        core = FiveGCore(env, SystemConfig.l25gc())
        runner = ProcedureRunner(core)
        ue = core.add_ue("imsi-208930000005001")
        framework = ResiliencyFramework(
            env,
            {"amf": core.amf, "smf": core.smf},
            sync_period=5 * MS,
        )
        framework.start()

        def scenario():
            yield from runner.register_ue(ue)
            framework.log_message(
                "registration", Direction.UPLINK, PacketKind.CONTROL
            )
            yield from framework.commit_event()
            yield from runner.establish_session(ue)
            framework.log_message(
                "session", Direction.UPLINK, PacketKind.CONTROL
            )
            yield from framework.commit_event()
            yield env.timeout(50 * MS)  # let checkpoints flow

        env.process(scenario())
        env.run(until=1.0)
        framework.stop()

        # Rebuild an AMF and SMF from the remote replica's state.
        amf_clone = AMF()
        amf_clone.restore(framework.remote.state_of("amf"))
        assert amf_clone.context(ue.supi).guti == ue.guti
        smf_clone = SMF()
        smf_clone.restore(framework.remote.state_of("smf"))
        restored = smf_clone.context_for(ue.supi, 1)
        original = core.smf.context_for(ue.supi, 1)
        assert restored.ue_ip == original.ue_ip
        assert restored.ul_teid == original.ul_teid
