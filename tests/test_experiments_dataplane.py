"""Shape tests for the data-plane experiments (Figs 10-11 + 40G)."""

import pytest

from repro.experiments.fig10 import (
    BURST_SIZES,
    PACKET_SIZES,
    burst_scaling,
    latency_vs_packet_size,
    line_rate_pps,
    scaling_40g,
    throughput_vs_packet_size,
)
from repro.experiments.fig11 import (
    build_classifier,
    bulk_probe_sweep,
    lookup_latency_sweep,
    update_latency,
)


class TestFig10Throughput:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row.size: row for row in throughput_vs_packet_size()}

    def test_all_sizes_swept(self, rows):
        assert set(rows) == set(PACKET_SIZES)

    def test_27x_at_68_bytes(self, rows):
        assert rows[68].uni_ratio == pytest.approx(27.0, rel=0.15)

    def test_l25gc_at_line_rate_small_packets(self, rows):
        expected = line_rate_pps(68) * 68 * 8 / 1e9
        assert rows[68].l25gc_uni_gbps == pytest.approx(expected, rel=0.01)

    def test_free5gc_improves_with_packet_size(self, rows):
        """Fig 10: kernel throughput (Gbps) grows with packet size as
        the fixed per-packet cost amortizes."""
        series = [rows[size].free5gc_uni_gbps for size in PACKET_SIZES]
        assert series == sorted(series)
        assert series[-1] > 2 * series[0]

    def test_bidirectional_not_worse_than_uni(self, rows):
        for row in rows.values():
            assert row.l25gc_bidir_gbps >= row.l25gc_uni_gbps * 0.99
            assert row.free5gc_bidir_gbps >= row.free5gc_uni_gbps * 0.99

    def test_l25gc_wins_everywhere(self, rows):
        for row in rows.values():
            assert row.l25gc_uni_gbps > row.free5gc_uni_gbps

    def test_two_cores_4x_at_1024(self):
        """§5.3: with 2 UPF cores, L25GC is ~4x free5GC at 1024 B."""
        rows = {
            row.size: row for row in throughput_vs_packet_size(cores=2)
        }
        ratio = rows[1024].l25gc_uni_gbps / rows[1024].free5gc_uni_gbps
        # free5GC stays single-core in the paper's comparison.
        single = {
            row.size: row for row in throughput_vs_packet_size(cores=1)
        }
        ratio = rows[1024].l25gc_uni_gbps / single[1024].free5gc_uni_gbps
        assert ratio == pytest.approx(4.0, rel=0.25)


class TestFig10Latency:
    def test_kernel_much_slower_and_l25gc_flat(self):
        rows = latency_vs_packet_size()
        for row in rows:
            assert row.free5gc_s > 4 * row.l25gc_s
        l25gc = [row.l25gc_s for row in rows]
        # "L25GC's latency remains relatively flat throughout".
        assert max(l25gc) < 2.0 * min(l25gc)


class Test40GScaling:
    def test_core_scaling_shape(self):
        rows = {row.cores: row.mtu_gbps for row in scaling_40g()}
        # 1 core ~ 10-15G, 2 cores ~ 26-28G, 4 cores at the 40G link.
        assert 10.0 <= rows[1] <= 15.0
        assert 24.0 <= rows[2] <= 30.0
        # 4 cores saturate the 40G link (payload rate minus framing).
        assert rows[4] >= 39.0


class TestFig11:
    @pytest.fixture(scope="class")
    def sweep(self):
        return lookup_latency_sweep(
            rule_counts=(10, 100, 1000),
            variants=("PDR-LL", "PDR-TSS_Best", "PDR-TSS_Worst", "PDR-PS"),
        )

    def test_linear_grows_linearly(self, sweep):
        by_rules = {row.rules: row.latency_s["PDR-LL"] for row in sweep}
        assert by_rules[1000] > 20 * by_rules[10]

    def test_tss_best_flat(self, sweep):
        by_rules = {row.rules: row.latency_s["PDR-TSS_Best"] for row in sweep}
        assert by_rules[1000] < 4 * by_rules[10]

    def test_tss_worst_explodes(self, sweep):
        """PDR-TSS_Worst leaves the chart by ~100 rules (Fig 11a)."""
        for row in sweep:
            if row.rules >= 100:
                assert (
                    row.latency_s["PDR-TSS_Worst"]
                    > 5 * row.latency_s["PDR-TSS_Best"]
                )

    def test_partition_sort_best_at_scale(self, sweep):
        large = next(row for row in sweep if row.rules == 1000)
        ps = large.latency_s["PDR-PS"]
        assert ps <= large.latency_s["PDR-LL"]
        assert ps <= large.latency_s["PDR-TSS_Worst"]
        # Highest throughput of all variants (Fig 11b).
        assert large.throughput_pps("PDR-PS") >= max(
            large.throughput_pps(name)
            for name in ("PDR-LL", "PDR-TSS_Worst")
        )

    def test_crossover_ll_beats_structures_when_tiny(self):
        """With 2 PDRs per session, the linear list is competitive
        (the paper: 'PDR-LL may be acceptable')."""
        rows = lookup_latency_sweep(
            rule_counts=(2,), variants=("PDR-LL", "PDR-PS")
        )
        tiny = rows[0]
        assert tiny.latency_s["PDR-LL"] < 5 * tiny.latency_s["PDR-PS"]

    def test_update_ordering(self):
        """LL updates cheapest; TSS and PS cost more but same order of
        magnitude (paper: 0.38 / 1.41 / 6.14 us)."""
        rows = {row.variant: row.update_s for row in update_latency()}
        assert rows["PDR-LL"] < rows["PDR-TSS_Best"]
        assert rows["PDR-LL"] < rows["PDR-PS"]
        assert rows["PDR-PS"] < 50 * rows["PDR-LL"]

    def test_build_classifier_traces_match(self):
        classifier, keys = build_classifier("PDR-PS", 200)
        assert len(classifier) == 200
        hits = sum(1 for key in keys if classifier.lookup(key) is not None)
        assert hits == len(keys)


class TestBurstScaling:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row.burst_size: row for row in burst_scaling()}

    def test_all_burst_sizes_swept(self, rows):
        assert set(rows) == set(BURST_SIZES)

    def test_calibrated_burst_reproduces_headline_rate(self, rows):
        from repro.core import DEFAULT_COSTS

        headline = DEFAULT_COSTS.forwarding_rate_pps(True, 68) / 1e6
        assert rows[DEFAULT_COSTS.calibrated_burst_size].l25gc_mpps == (
            pytest.approx(headline)
        )

    def test_l25gc_rate_climbs_with_burst(self, rows):
        rates = [rows[burst].l25gc_mpps for burst in sorted(rows)]
        assert rates == sorted(rates)
        assert rates[-1] > rates[0]

    def test_kernel_path_flat(self, rows):
        kernel = {rows[burst].free5gc_mpps for burst in rows}
        assert len(kernel) == 1

    def test_bulk_probe_sweep_shapes(self):
        """Measured lookup_many amortization: wall-clock, so only the
        shape is asserted — bulk probing a warm cache must not be
        slower than ~the singleton path at a realistic burst size."""
        rows = bulk_probe_sweep(
            burst_sizes=(1, 32), flows=8, rules=64, trace_len=2048
        )
        assert [row.burst_size for row in rows] == [1, 32]
        for row in rows:
            assert row.lookup_s > 0 and row.lookup_many_s > 0
        # The 32-packet bulk probe skips per-key LRU/counter work; it
        # should comfortably beat singletons (loose bound: no slower
        # than 1.5x, to keep CI noise from flaking the suite).
        assert rows[1].lookup_many_s < rows[1].lookup_s * 1.5
