"""Shared pytest configuration.

``pytest --sanitize`` runs every test under the runtime descriptor
sanitizer (:mod:`repro.analysis.sanitizer`): each zero-copy handoff
through :class:`~repro.core.transport.MessageBus` and
:class:`~repro.core.rings.Ring` is stamped with an owner and content
fingerprint, and any mutate-after-send, double-enqueue, or
use-after-dequeue violation fails the test with the offending send
site and a field-level diff.  Descriptors still sitting in a transport
at teardown are reported as leak warnings.

``pytest --race`` runs every test under the shared-state race detector
(:mod:`repro.analysis.races`): cross-role same-instant conflicts,
non-owner writes, and rule mutations missing an epoch bump fail the
test with both access sites.  ``--race-trace PATH`` additionally
appends every recorded access to a JSON-lines trace that
``python -m repro.analysis.races PATH`` can replay offline.
"""

import warnings

import pytest

from repro.analysis import races, sanitizer


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help=(
            "run all tests under the zero-copy descriptor sanitizer; "
            "ownership/aliasing violations fail the test"
        ),
    )
    parser.addoption(
        "--race",
        action="store_true",
        default=False,
        help=(
            "run all tests under the shared-state race detector; "
            "ownership/conflict violations fail the test"
        ),
    )
    parser.addoption(
        "--race-trace",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "with --race: append each test's recorded accesses to a "
            "JSON-lines trace replayable via python -m "
            "repro.analysis.races"
        ),
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_race: host-time micro-benchmark whose wall-clock "
        "measurements are skewed by the race detector's access hooks; "
        "skipped under --race",
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--race"):
        return
    skip = pytest.mark.skip(
        reason="host-time benchmark; --race instrumentation skews it"
    )
    for item in items:
        if item.get_closest_marker("no_race"):
            item.add_marker(skip)


@pytest.fixture(autouse=True)
def _descriptor_sanitizer(request):
    if not request.config.getoption("--sanitize"):
        yield None
        return
    with sanitizer.sanitized() as san:
        yield san
    if san.violations:
        pytest.fail(san.report(), pytrace=False)
    leaks = san.leaks()
    if leaks:
        # A leak is a warning, not a failure: several tests legitimately
        # tear down mid-flight (failure injection) and the report is
        # what matters.
        warnings.warn(
            f"{request.node.nodeid}: {san.leak_report()}",
            stacklevel=1,
        )


@pytest.fixture(autouse=True)
def _race_detector(request):
    if not request.config.getoption("--race"):
        yield None
        return
    trace_path = request.config.getoption("--race-trace")
    with races.traced(record=trace_path is not None) as det:
        yield det
    if trace_path is not None:
        det.dump_trace(trace_path, header={"test": request.node.nodeid})
    if det.violations:
        pytest.fail(det.report(), pytrace=False)
