"""Shared pytest configuration.

``pytest --sanitize`` runs every test under the runtime descriptor
sanitizer (:mod:`repro.analysis.sanitizer`): each zero-copy handoff
through :class:`~repro.core.transport.MessageBus` and
:class:`~repro.core.rings.Ring` is stamped with an owner and content
fingerprint, and any mutate-after-send, double-enqueue, or
use-after-dequeue violation fails the test with the offending send
site and a field-level diff.
"""

import pytest

from repro.analysis import sanitizer


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help=(
            "run all tests under the zero-copy descriptor sanitizer; "
            "ownership/aliasing violations fail the test"
        ),
    )


@pytest.fixture(autouse=True)
def _descriptor_sanitizer(request):
    if not request.config.getoption("--sanitize"):
        yield None
        return
    with sanitizer.sanitized() as san:
        yield san
    if san.violations:
        pytest.fail(san.report(), pytrace=False)
