"""Call-graph builder tests on seeded fixture packages."""

import textwrap

from repro.analysis.program import (
    build_call_graph,
    build_symbol_table,
    module_name_for,
)


def write_pkg(tmp_path, files):
    """Materialize ``{relpath: source}`` under tmp_path; returns the
    (path, source) pairs the engine consumes."""
    out = []
    for relpath, source in sorted(files.items()):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        source = textwrap.dedent(source)
        path.write_text(source)
    for relpath in sorted(files):
        path = tmp_path / relpath
        out.append((str(path), path.read_text()))
    return out


def graph_for(tmp_path, files):
    table = build_symbol_table(write_pkg(tmp_path, files))
    return table, build_call_graph(table)


def edge_pairs(graph):
    return {(e.caller, e.callee) for e in graph.edges}


class TestModuleNaming:
    def test_package_chain(self, tmp_path):
        write_pkg(tmp_path, {"pkg/__init__.py": "", "pkg/sub/__init__.py": "",
                             "pkg/sub/mod.py": "x = 1\n"})
        assert module_name_for(str(tmp_path / "pkg/sub/mod.py")) == "pkg.sub.mod"
        assert module_name_for(str(tmp_path / "pkg/sub/__init__.py")) == "pkg.sub"

    def test_stops_outside_packages(self, tmp_path):
        write_pkg(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": ""})
        assert module_name_for(str(tmp_path / "pkg/mod.py")) == "pkg.mod"


class TestDiamondCalls:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/mod.py": """
            def d():
                return 1

            def b():
                return d()

            def c():
                return d()

            def a():
                return b() + c()
        """,
    }

    def test_all_edges_resolved(self, tmp_path):
        _, graph = graph_for(tmp_path, self.FILES)
        assert edge_pairs(graph) == {
            ("pkg.mod.a", "pkg.mod.b"),
            ("pkg.mod.a", "pkg.mod.c"),
            ("pkg.mod.b", "pkg.mod.d"),
            ("pkg.mod.c", "pkg.mod.d"),
        }
        assert not graph.unknown

    def test_reachability_witness_chain(self, tmp_path):
        _, graph = graph_for(tmp_path, self.FILES)
        chains = graph.reachable(["pkg.mod.a"])
        assert set(chains) == {
            "pkg.mod.a", "pkg.mod.b", "pkg.mod.c", "pkg.mod.d",
        }
        # BFS: d's witness chain goes through exactly one intermediate.
        assert chains["pkg.mod.d"][0] == "pkg.mod.a"
        assert chains["pkg.mod.d"][-1] == "pkg.mod.d"
        assert len(chains["pkg.mod.d"]) == 3

    def test_roots_are_uncalled_functions(self, tmp_path):
        _, graph = graph_for(tmp_path, self.FILES)
        assert graph.roots() == ["pkg.mod.a"]


class TestMethodResolution:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/mod.py": """
            class Base:
                def handle(self):
                    return self.step()

                def step(self):
                    return 0

            class Derived(Base):
                def step(self):
                    return 1

            class Grandchild(Derived):
                pass

            def drive(nf: Base):
                return nf.handle()
        """,
    }

    def test_inherited_method_resolves_through_mro(self, tmp_path):
        table, _ = graph_for(tmp_path, self.FILES)
        assert table.resolve_method("pkg.mod.Grandchild", "step") == (
            "pkg.mod.Derived.step"
        )
        assert table.resolve_method("pkg.mod.Grandchild", "handle") == (
            "pkg.mod.Base.handle"
        )

    def test_virtual_call_fans_out_to_overrides(self, tmp_path):
        _, graph = graph_for(tmp_path, self.FILES)
        # self.step() inside Base.handle may land in any override.
        targets = {
            e.callee for e in graph.callees("pkg.mod.Base.handle")
        }
        assert targets == {"pkg.mod.Base.step", "pkg.mod.Derived.step"}
        kinds = {e.kind for e in graph.callees("pkg.mod.Base.handle")}
        assert kinds == {"virtual"}

    def test_annotated_parameter_dispatch(self, tmp_path):
        _, graph = graph_for(tmp_path, self.FILES)
        assert ("pkg.mod.drive", "pkg.mod.Base.handle") in edge_pairs(graph)


class TestConstructorsAndLocals:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/mod.py": """
            class Widget:
                def __init__(self):
                    self.size = 1

                def poke(self):
                    return self.size

            def make():
                w = Widget()
                return w.poke()
        """,
    }

    def test_constructor_edge_and_local_inference(self, tmp_path):
        _, graph = graph_for(tmp_path, self.FILES)
        pairs = edge_pairs(graph)
        assert ("pkg.mod.make", "pkg.mod.Widget.__init__") in pairs
        # ``w = Widget()`` types w, so w.poke() resolves.
        assert ("pkg.mod.make", "pkg.mod.Widget.poke") in pairs


class TestDecoratedEntryPoints:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/mod.py": """
            def register(fn):
                return fn

            @register
            def entry():
                return helper()

            def helper():
                return 1
        """,
    }

    def test_decorated_function_keeps_its_edges(self, tmp_path):
        table, graph = graph_for(tmp_path, self.FILES)
        func = table.functions["pkg.mod.entry"]
        assert func.decorators == ("register",)
        assert ("pkg.mod.entry", "pkg.mod.helper") in edge_pairs(graph)


class TestUnknownEdges:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/mod.py": """
            import os

            def run(callback):
                callback()
                os.getcwd()
                target = getattr(os, "sep")
                return target
        """,
    }

    def test_dynamic_calls_become_explicit_unknown_edges(self, tmp_path):
        _, graph = graph_for(tmp_path, self.FILES)
        unknown = {u.callee_repr for u in graph.unknown_from("pkg.mod.run")}
        # Neither the callback nor the stdlib call is silently dropped.
        assert "callback" in unknown
        assert "os.getcwd" in unknown

    def test_unknown_edges_serialize(self, tmp_path):
        _, graph = graph_for(tmp_path, self.FILES)
        data = graph.to_dict()
        reprs = {u["callee"] for u in data["unknown_edges"]}
        assert "callback" in reprs
        assert all("reason" in u for u in data["unknown_edges"])


class TestDotExport:
    def test_dot_restricts_to_reachable_subgraph(self, tmp_path):
        _, graph = graph_for(tmp_path, TestDiamondCalls.FILES)
        dot = graph.to_dot(entries=["pkg.mod.b"])
        assert dot.startswith("digraph callgraph {")
        assert '"mod.b" -> "mod.d"' in dot
        # a -> b is outside the subgraph reachable from b.
        assert '"mod.a"' not in dot

    def test_full_dot_has_every_edge(self, tmp_path):
        _, graph = graph_for(tmp_path, TestDiamondCalls.FILES)
        dot = graph.to_dot()
        for name in ("mod.a", "mod.b", "mod.c", "mod.d"):
            assert f'"{name}"' in dot
