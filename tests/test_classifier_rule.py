"""Tests for the PDR rule model."""

import pytest

from repro.classifier import (
    NUM_FIELDS,
    PDI_FIELDS,
    Rule,
    exact,
    prefix,
    wildcard,
)


class TestFieldHelpers:
    def test_twenty_fields(self):
        """The paper employs up to 20 PDI IEs per PDR (§3.4)."""
        assert NUM_FIELDS == 20

    def test_exact(self):
        assert exact(5) == (5, 5)

    def test_wildcard(self):
        spec = PDI_FIELDS[0]  # src_ip, 32 bits
        assert wildcard(spec) == (0, 0xFFFFFFFF)

    def test_prefix(self):
        spec = PDI_FIELDS[0]
        low, high = prefix(spec, 0x0A010203, 24)
        assert low == 0x0A010200
        assert high == 0x0A0102FF

    def test_prefix_extremes(self):
        spec = PDI_FIELDS[0]
        assert prefix(spec, 123, 0) == wildcard(spec)
        assert prefix(spec, 123, 32) == exact(123)

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            prefix(PDI_FIELDS[0], 1, 33)


class TestRule:
    def test_from_fields_defaults_to_wildcards(self):
        rule = Rule.from_fields(dst_ip=exact(7))
        for index, spec in enumerate(PDI_FIELDS):
            if spec.name == "dst_ip":
                assert rule.ranges[index] == (7, 7)
            else:
                assert rule.is_wildcard(index)

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError):
            Rule.from_fields(flux_capacitor=exact(1))

    def test_wrong_range_count_raises(self):
        with pytest.raises(ValueError):
            Rule(ranges=((0, 1),) * 3)

    def test_out_of_range_value_raises(self):
        spec_max = PDI_FIELDS[7].max_value  # qfi: 6 bits
        with pytest.raises(ValueError):
            Rule.from_fields(qfi=(0, spec_max + 1))

    def test_inverted_range_raises(self):
        with pytest.raises(ValueError):
            Rule.from_fields(dst_port=(10, 5))

    def test_matches(self):
        rule = Rule.from_fields(
            dst_ip=exact(100), protocol=exact(17), dst_port=(1000, 2000)
        )
        hit = Rule.key_from_fields(dst_ip=100, protocol=17, dst_port=1500)
        miss_port = Rule.key_from_fields(dst_ip=100, protocol=17, dst_port=99)
        miss_ip = Rule.key_from_fields(dst_ip=101, protocol=17, dst_port=1500)
        assert rule.matches(hit)
        assert not rule.matches(miss_port)
        assert not rule.matches(miss_ip)

    def test_tuple_signature_prefixes(self):
        rule = Rule.from_fields(
            src_ip=prefix(PDI_FIELDS[0], 0x0A000000, 8),
            dst_port=exact(80),
        )
        signature = rule.tuple_signature()
        assert signature[0] == 8           # src_ip /8
        assert signature[3] == 16          # dst_port exact (16 bits)
        assert signature[1] == 0           # dst_ip wildcard

    def test_tuple_signature_non_prefix_is_none(self):
        rule = Rule.from_fields(dst_port=(5, 9))  # span 5: not a prefix
        assert rule.tuple_signature()[3] is None

    def test_specificity(self):
        broad = Rule.from_fields()
        narrow = Rule.from_fields(dst_ip=exact(1), src_ip=exact(2))
        assert narrow.specificity() > broad.specificity()

    def test_key_from_fields_unknown_raises(self):
        with pytest.raises(ValueError):
            Rule.key_from_fields(nonsense=1)
