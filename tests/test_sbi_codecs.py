"""Tests for the SBI serialization codecs (Fig 6's subjects)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sbi import (
    DescriptorCodec,
    FlatCodec,
    FlatView,
    JsonCodec,
    PostSmContextsRequest,
    ProtoCodec,
    SubscriptionDataRequest,
    UpdateSmContextRequest,
    all_codecs,
    sample_messages,
)

BYTE_CODECS = [JsonCodec(), ProtoCodec(), FlatCodec()]


def materialize(decoded):
    """FlatViews decode lazily; force the typed message."""
    if isinstance(decoded, FlatView):
        return decoded.to_message()
    return decoded


class TestRoundTrips:
    @pytest.mark.parametrize(
        "codec", all_codecs(), ids=lambda codec: codec.name
    )
    def test_every_message_roundtrips(self, codec):
        for message in sample_messages():
            decoded = materialize(codec.decode(codec.encode(message)))
            assert type(decoded) is type(message)
            assert decoded.to_dict() == message.to_dict()

    def test_from_dict_ignores_unknown_fields(self):
        message = UpdateSmContextRequest.from_dict(
            {"up_cnx_state": "ACTIVATED", "novel_field": 1}
        )
        assert message.up_cnx_state == "ACTIVATED"

    def test_proto_smaller_than_json(self):
        message = PostSmContextsRequest()
        assert len(ProtoCodec().encode(message)) < len(
            JsonCodec().encode(message)
        )

    def test_descriptor_codec_is_identity(self):
        codec = DescriptorCodec()
        message = PostSmContextsRequest()
        assert codec.encode(message) is message
        assert codec.decode(message) is message


class TestProtoValues:
    @given(
        st.recursive(
            st.none()
            | st.booleans()
            | st.integers(min_value=-(2**60), max_value=2**60)
            | st.floats(allow_nan=False, allow_infinity=False)
            | st.text(max_size=40)
            | st.binary(max_size=40),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=8), children, max_size=4),
            max_leaves=25,
        )
    )
    def test_value_roundtrip_property(self, value):
        from repro.sbi.codecs import _decode_value, _encode_value

        out = bytearray()
        _encode_value(out, value)
        decoded, consumed = _decode_value(bytes(out), 0)
        assert consumed == len(out)
        if isinstance(value, tuple):
            value = list(value)
        assert decoded == value

    def test_negative_integers(self):
        from repro.sbi.codecs import _decode_value, _encode_value

        for value in (-1, -127, -128, -300000, 0, 1, 300000):
            out = bytearray()
            _encode_value(out, value)
            decoded, _ = _decode_value(bytes(out), 0)
            assert decoded == value

    def test_unencodable_type_raises(self):
        from repro.sbi.codecs import _encode_value

        with pytest.raises(TypeError):
            _encode_value(bytearray(), object())


class TestFlatView:
    def test_lazy_field_access(self):
        codec = FlatCodec()
        message = SubscriptionDataRequest()
        view = codec.decode(codec.encode(message))
        assert view["supi"] == message.supi
        assert view["dataset_names"] == message.dataset_names

    def test_type_name(self):
        codec = FlatCodec()
        view = codec.decode(codec.encode(PostSmContextsRequest()))
        assert view.type_name == "PostSmContextsRequest"

    def test_contains_and_get(self):
        codec = FlatCodec()
        view = codec.decode(codec.encode(PostSmContextsRequest()))
        assert "supi" in view
        assert "nonexistent" not in view
        assert view.get("nonexistent", "fallback") == "fallback"

    def test_missing_field_raises(self):
        codec = FlatCodec()
        view = codec.decode(codec.encode(PostSmContextsRequest()))
        with pytest.raises(KeyError):
            view["nonexistent"]

    def test_truncated_buffer_raises(self):
        with pytest.raises(ValueError):
            FlatView(b"\x00\x00")

    def test_decode_is_constant_work(self):
        """Constructing a view must not parse values (near-zero
        deserialization, Fig 6's FlatBuffers property)."""
        codec = FlatCodec()
        encoded = codec.encode(PostSmContextsRequest())
        view = codec.decode(encoded)
        # Neither the vtable nor any value has been parsed yet.
        assert view._vtable is None


class TestSampleMessages:
    def test_registry_covers_samples(self):
        from repro.sbi import MESSAGE_REGISTRY

        samples = sample_messages()
        assert len(samples) == len(MESSAGE_REGISTRY)
        assert len({type(s) for s in samples}) == len(samples)

    def test_message_names_match_classes(self):
        for message in sample_messages():
            assert message.name == type(message).__name__
