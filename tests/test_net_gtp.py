"""Tests for GTP-U encapsulation (the N3 tunnel codec)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import GTPU_PORT, GTPUHeader, decapsulate, encapsulate
from repro.net.gtp import MSG_ECHO_REQUEST, MSG_END_MARKER, MSG_GPDU


class TestGTPUHeader:
    def test_minimal_roundtrip(self):
        header = GTPUHeader(teid=0xDEADBEEF, length=100)
        decoded, rest = GTPUHeader.unpack(header.pack() + b"\x01" * 100)
        assert decoded.teid == 0xDEADBEEF
        assert decoded.length == 100
        assert decoded.qfi is None
        assert len(rest) == 100

    def test_qfi_extension_roundtrip(self):
        header = GTPUHeader(teid=7, length=64, qfi=9, pdu_type=0)
        decoded, _ = GTPUHeader.unpack(header.pack() + b"\x00" * 64)
        assert decoded.qfi == 9
        assert decoded.pdu_type == 0
        assert decoded.teid == 7
        assert decoded.length == 64

    def test_uplink_pdu_type(self):
        header = GTPUHeader(teid=7, length=0, qfi=5, pdu_type=1)
        decoded, _ = GTPUHeader.unpack(header.pack())
        assert decoded.pdu_type == 1

    def test_sequence_number_roundtrip(self):
        header = GTPUHeader(teid=1, length=0, sequence=4242)
        decoded, _ = GTPUHeader.unpack(header.pack())
        assert decoded.sequence == 4242

    def test_message_types(self):
        for message_type in (MSG_GPDU, MSG_ECHO_REQUEST, MSG_END_MARKER):
            header = GTPUHeader(teid=1, message_type=message_type)
            decoded, _ = GTPUHeader.unpack(header.pack())
            assert decoded.message_type == message_type

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            GTPUHeader.unpack(b"\x30\xff\x00")

    def test_wrong_version_raises(self):
        raw = bytearray(GTPUHeader(teid=1).pack())
        raw[0] = 0x50  # version 2
        with pytest.raises(ValueError):
            GTPUHeader.unpack(bytes(raw))

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=63),
    )
    def test_roundtrip_property(self, teid, qfi):
        header = GTPUHeader(teid=teid, length=0, qfi=qfi)
        decoded, _ = GTPUHeader.unpack(header.pack())
        assert decoded.teid == teid
        assert decoded.qfi == qfi


class TestEncapsulation:
    def _inner(self) -> bytes:
        from repro.net import FiveTuple, Packet

        packet = Packet(
            size=200,
            flow=FiveTuple(
                src_ip=0x0A3C0001,
                dst_ip=0x08080808,
                src_port=40000,
                dst_port=443,
            ),
        )
        return packet.to_bytes()

    def test_full_roundtrip(self):
        inner = self._inner()
        outer = encapsulate(
            inner,
            teid=0x1234,
            outer_src=0xC0A80102,
            outer_dst=0xC0A80201,
            qfi=9,
        )
        gtp, recovered = decapsulate(outer)
        assert recovered == inner
        assert gtp.teid == 0x1234
        assert gtp.qfi == 9

    def test_outer_headers_well_formed(self):
        from repro.net import IPv4Header, UDPHeader

        inner = self._inner()
        outer = encapsulate(inner, teid=1, outer_src=10, outer_dst=20)
        ip, rest = IPv4Header.unpack(outer)
        assert (ip.src, ip.dst) == (10, 20)
        udp, _ = UDPHeader.unpack(rest)
        assert udp.dst_port == GTPU_PORT

    def test_decapsulate_non_gtp_raises(self):
        from repro.net import IPv4Header, UDPHeader

        udp = UDPHeader(src_port=53, dst_port=53)
        payload = udp.pack(b"dns", 1, 2) + b"dns"
        ip = IPv4Header(src=1, dst=2, total_length=20 + len(payload))
        with pytest.raises(ValueError):
            decapsulate(ip.pack() + payload)

    def test_non_gpdu_yields_empty_payload(self):
        from repro.net.gtp import GTPUHeader
        from repro.net.headers import IPv4Header, UDPHeader

        gtp = GTPUHeader(teid=5, message_type=MSG_END_MARKER, length=0)
        gtp_bytes = gtp.pack()
        udp = UDPHeader(src_port=GTPU_PORT, dst_port=GTPU_PORT)
        payload = udp.pack(gtp_bytes, 1, 2) + gtp_bytes
        ip = IPv4Header(src=1, dst=2, total_length=20 + len(payload))
        header, inner = decapsulate(ip.pack() + payload)
        assert header.message_type == MSG_END_MARKER
        assert inner == b""
