"""Tests for the shared-state race detector (repro.analysis.races).

Three kinds of coverage:

* seeded hazards — fixtures that plant each violation class (same-
  instant write/write conflict, non-owner write, rule mutation without
  an epoch bump) and assert the exact report contents, including both
  access sites;
* clean runs — full attach, N2 handover, paging re-activation, and a
  UPF failover rebuild, each asserted race-free under an active
  detector (these double as regressions for the ownership fixes);
* the trace/replay pipeline — ``--race-trace`` JSON lines replayed
  through ``python -m repro.analysis.races``.

The seeded fixtures intentionally violate the single-writer lint rules
and carry ``repro: noqa`` markers — they are the bug, on purpose.
"""

import json

import pytest

from repro.analysis import races
from repro.cp import FiveGCore, ProcedureRunner, SystemConfig
from repro.net import Direction, FiveTuple, Packet, PacketKind
from repro.pfcp.builder import build_session_establishment
from repro.resiliency import ResiliencyFramework
from repro.sim import MS, Environment
from repro.up import FAR, FARAction, UPFSession

UE_IP = 0x0A3C0001
SUPI = "imsi-208930000060001"


def _session(seid=1):
    return UPFSession(seid=seid, ue_ip=UE_IP, ul_teid=0x100)


def _drive(env, *procedures):
    results = []

    def scenario():
        for procedure in procedures:
            results.append((yield from procedure))

    env.process(scenario())
    env.run()
    return results


def _attached_core(env, supi=SUPI):
    core = FiveGCore(env, SystemConfig.l25gc())
    runner = ProcedureRunner(core)
    ue = core.add_ue(supi)
    return core, runner, ue


class TestEngineSections:
    def test_yield_generation_counts_resumes(self):
        env = Environment()
        seen = []

        def proc():
            seen.append(env.yield_generation)
            yield env.timeout(1)
            seen.append(env.yield_generation)

        env.process(proc())
        env.run()
        assert seen == [1, 2]

    def test_generations_distinguish_interleaved_processes(self):
        env = Environment()
        seen = []

        def proc(tag):
            seen.append((tag, env.yield_generation))
            yield env.timeout(0)

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        generations = [gen for _tag, gen in seen]
        assert len(set(generations)) == 2

    def test_named_process_exposes_name(self):
        env = Environment()

        def proc():
            yield env.timeout(0)

        process = env.process(proc(), name="upf-u")
        assert process.name == "upf-u"
        env.run()

    def test_nf_run_loop_is_named(self):
        from repro.core.nf import NetworkFunction

        env = Environment()
        nf = NetworkFunction(env, "upf-u", service_id=2)
        nf.start()
        assert nf._process.name == "upf-u"


class TestSeededNonOwnerWrite:
    def test_cp_clearing_report_pending_is_flagged(self):
        with races.traced() as det:
            session = _session()
            with det.role("upf-u"):
                session.report_pending = True
            with det.role("upf-c"):
                session.report_pending = False
        [violation] = det.violations
        assert violation.kind == "non-owner-write"
        assert violation.structure == "session(seid=1)"
        assert violation.part == "report_pending"
        assert violation.owner == "upf-u"
        # Both access sites are reported and point into this file.
        assert "test_analysis_races.py" in violation.first.site
        assert "test_analysis_races.py" in violation.second.site
        assert violation.first.role == "upf-u"
        assert violation.second.role == "upf-c"
        assert violation.diff == [("<value>", "True", "False")]
        text = violation.report()
        assert "prior write" in text
        assert "this  write" in text
        assert "report_pending" in text

    def test_owner_write_is_clean(self):
        with races.traced() as det:
            session = _session()
            with det.role("upf-u"):
                session.report_pending = True
                session.report_pending = False
        assert det.violations == []

    def test_roleless_harness_write_is_exempt(self):
        """Setup/teardown code outside any role plays the operator CLI
        and is recorded but not checked."""
        with races.traced() as det:
            session = _session()
            session.report_pending = True
        assert det.violations == []
        assert det.accesses > 0

    def test_full_buffer_tail_drop_records_no_packets_write(self):
        """Regression: ``SmartBuffer.push`` used to fire the ``packets``
        write hook *before* the capacity check, so a tail-drop on a full
        buffer recorded a phantom write — and a full-buffer storm seen
        from a non-owner role was reported as a cross-role data race
        even though ``packets`` never changed."""
        packet = Packet(direction=Direction.DOWNLINK, size=100)
        with races.traced() as det:
            session = UPFSession(
                seid=1, ue_ip=UE_IP, ul_teid=0x100, buffer_capacity=2
            )
            with det.role("upf-u"):
                assert session.buffer.push(packet)
                assert session.buffer.push(packet)
            # Overflow observed from the non-owner role: the drop path
            # mutates only drop accounting, never ``packets``.
            with det.role("upf-c"):
                assert not session.buffer.push(packet)
        assert session.buffer.dropped == 1
        assert len(session.buffer) == 2
        assert det.violations == []

    def test_admitted_push_from_non_owner_still_flagged(self):
        """The fix narrows the hook to admitted pushes only — a push
        that *does* mutate ``packets`` from the wrong role must keep
        tripping the detector."""
        packet = Packet(direction=Direction.DOWNLINK, size=100)
        with races.traced() as det:
            session = UPFSession(
                seid=1, ue_ip=UE_IP, ul_teid=0x100, buffer_capacity=2
            )
            with det.role("upf-c"):
                assert session.buffer.push(packet)
        [violation] = det.violations
        assert violation.kind == "non-owner-write"
        assert violation.part == "packets"


class TestSeededWriteWriteConflict:
    def test_same_instant_cross_role_writes_conflict(self):
        env = Environment()
        with races.traced(env=env) as det:
            session = _session()

            def upf_u_writer():
                with det.role("upf-u"):
                    session.report_pending = True
                yield env.timeout(0)

            def rogue_writer():
                with det.role("upf-c"):
                    session.report_pending = False
                yield env.timeout(0)

            env.process(upf_u_writer())
            env.process(rogue_writer())
            env.run()
        conflicts = [
            v for v in det.violations if v.kind == "conflicting-access"
        ]
        [conflict] = conflicts
        assert conflict.part == "report_pending"
        assert {conflict.first.role, conflict.second.role} == {
            "upf-u", "upf-c",
        }
        # Same simulated instant, different atomic sections.
        assert conflict.first.time == pytest.approx(conflict.second.time)
        assert conflict.first.generation != conflict.second.generation
        assert "test_analysis_races.py" in conflict.first.site
        assert "test_analysis_races.py" in conflict.second.site

    def test_write_then_read_across_roles_conflicts(self):
        env = Environment()
        with races.traced(env=env) as det:
            session = _session()

            def writer():
                with det.role("upf-c"):
                    det.on_write(session, "fars", detail="seeded")
                yield env.timeout(0)

            def reader():
                with det.role("upf-u"):
                    det.on_read(session, "fars")
                yield env.timeout(0)

            env.process(writer())
            env.process(reader())
            env.run()
        kinds = [v.kind for v in det.violations]
        assert "conflicting-access" in kinds

    def test_reads_never_conflict(self):
        env = Environment()
        with races.traced(env=env) as det:
            session = _session()

            def reader(role_name):
                with det.role(role_name):
                    det.on_read(session, "fars")
                yield env.timeout(0)

            env.process(reader("upf-u"))
            env.process(reader("upf-c"))
            env.run()
        assert det.violations == []

    def test_same_atomic_section_never_conflicts(self):
        """A synchronous call chain (e.g. UPF-C triggering a flush that
        does UPF-U work) is program-ordered, not a race."""
        env = Environment()
        with races.traced(env=env) as det:
            session = _session()

            def chain():
                with det.role("upf-c"):
                    det.on_write(session, "fars", detail="modify")
                    with det.role("upf-u"):
                        det.on_read(session, "fars")
                yield env.timeout(0)

            env.process(chain())
            env.run()
        conflicts = [
            v for v in det.violations if v.kind == "conflicting-access"
        ]
        assert conflicts == []

    def test_main_thread_accesses_never_conflict(self):
        """Harness code runs between engine steps, so it is serialized
        against every process even at the same simulated time."""
        env = Environment()
        with races.traced(env=env) as det:
            session = _session()
            with det.role("upf-c"):
                det.on_write(session, "fars", detail="from main")

            def reader():
                with det.role("upf-u"):
                    det.on_read(session, "fars")
                yield env.timeout(0)

            env.process(reader())
            env.run()
        conflicts = [
            v for v in det.violations if v.kind == "conflicting-access"
        ]
        assert conflicts == []


class TestSeededMissingEpochBump:
    def test_unbumped_mutation_flagged_at_next_yield(self):
        env = Environment()
        with races.traced(env=env) as det:

            def buggy_cp(session):
                with det.role("upf-c"):
                    session.fars[9] = "far"  # repro: noqa[R008,R009] — seeded bug
                    det.on_write(
                        session,
                        "fars",
                        value=sorted(session.fars),
                        detail="install_far(9) without bump",
                    )
                yield env.timeout(1)

            env.process(buggy_cp(_session()))
            env.run()
        [violation] = det.violations
        assert violation.kind == "missing-epoch-bump"
        assert violation.part == "fars"
        assert violation.second.role == "upf-c"
        assert "test_analysis_races.py" in violation.second.site
        assert "RuleEpoch.bump()" in violation.detail

    def test_unbumped_mutation_flagged_at_finish(self):
        with races.traced() as det:
            session = _session()
            with det.role("upf-c"):
                session.fars[9] = "far"  # repro: noqa[R008,R009] — seeded bug
                det.on_write(session, "fars", detail="no bump, no yield")
        [violation] = det.violations
        assert violation.kind == "missing-epoch-bump"
        assert "never followed" in violation.detail

    def test_bumped_mutation_is_clean(self):
        env = Environment()
        with races.traced(env=env) as det:

            def proper_cp(session):
                with det.role("upf-c"):
                    session.install_far(FAR(far_id=9, action=FARAction()))
                yield env.timeout(1)

            env.process(proper_cp(_session()))
            env.run()
        assert det.violations == []


class TestDetectorCore:
    def test_unregistered_objects_are_ignored(self):
        with races.traced() as det:
            det.on_write(object(), "anything")
            det.on_read(object(), "anything")
        assert det.accesses == 0
        assert det.violations == []

    def test_registered_predicate(self):
        with races.traced() as det:
            session = _session()
            assert det.registered(session)
            assert det.registered(session.buffer)
            assert not det.registered(object())

    def test_role_stack_nests_and_restores(self):
        det = races.RaceDetector()
        assert det.current_role() is None
        with det.role("upf-c"):
            assert det.current_role() == "upf-c"
            with det.role("upf-u"):
                assert det.current_role() == "upf-u"
            assert det.current_role() == "upf-c"
        assert det.current_role() is None

    def test_repeat_violations_deduplicate_with_count(self):
        with races.traced() as det:
            session = _session()
            with det.role("upf-u"):
                session.report_pending = True
            for _ in range(3):
                with det.role("upf-c"):
                    session.report_pending = False
        # First clear pairs with the upf-u write; the repeats pair with
        # the previous upf-c clear (same sites) and collapse into one
        # counted violation instead of flooding the report.
        assert len(det.violations) == 2
        assert det.violations[1].count == 2
        assert "2 occurrences" in det.violations[1].report()

    def test_strict_mode_raises(self):
        with pytest.raises(races.RaceError):
            with races.traced(strict=True) as det:
                session = _session()
                with det.role("upf-c"):
                    session.report_pending = False

    def test_to_dict_round_trips_to_json(self):
        with races.traced() as det:
            session = _session()
            with det.role("upf-c"):
                session.report_pending = False
        payload = json.loads(json.dumps(det.to_dict()))
        assert payload["violations"][0]["kind"] == "non-owner-write"
        assert payload["violations"][0]["second"]["role"] == "upf-c"
        assert payload["accesses"] == det.accesses

    def test_disabled_hooks_cost_nothing(self, monkeypatch):
        """With no active detector the instrumented paths stay silent
        (also under ``pytest --race``, hence the explicit disable)."""
        monkeypatch.setattr(races, "_ACTIVE", None)
        assert races.active() is None
        session = _session()
        session.report_pending = True
        session.install_far(FAR(far_id=1, action=FARAction()))
        assert races.active() is None


class TestCleanScenarios:
    def test_attach_is_race_clean(self):
        env = Environment()
        with races.traced(env=env) as det:
            core, runner, ue = _attached_core(env)
            _drive(
                env,
                runner.register_ue(ue, gnb_id=1),
                runner.establish_session(ue),
            )
        assert det.violations == [], det.report()
        assert det.accesses > 0

    def test_n2_handover_is_race_clean(self):
        env = Environment()
        with races.traced(env=env) as det:
            core, runner, ue = _attached_core(env)
            _drive(
                env,
                runner.register_ue(ue, gnb_id=1),
                runner.establish_session(ue),
            )
            _drive(env, runner.handover(ue, target_gnb_id=2))
        assert det.violations == [], det.report()

    def test_paging_reactivation_is_race_clean(self):
        """Regression for the ownership fix in UPF-C's session modify:
        clearing ``report_pending`` (UPF-U state) is now left to the
        flush the UPF-U itself performs; the old direct clear from the
        PFCP handler fails this test as a non-owner-write."""
        env = Environment()
        with races.traced(env=env) as det:
            core, runner, ue = _attached_core(env)
            _drive(
                env,
                runner.register_ue(ue, gnb_id=1),
                runner.establish_session(ue),
                runner.release_to_idle(ue),
            )
            session = core.sessions.sessions()[0]

            def on_report(report):
                def page():
                    yield from runner.page_ue(ue)

                env.process(page())

            core.on_report = on_report
            core.inject_downlink(
                Packet(
                    direction=Direction.DOWNLINK,
                    flow=FiveTuple(src_ip=1, dst_ip=session.ue_ip,
                                   src_port=80, dst_port=4000),
                    created_at=env.now,
                )
            )
            env.run()
            # The paging cycle completed and the report flag is down
            # again — cleared by the UPF-U's flush, not by the UPF-C.
            assert len(ue.received) == 1
            assert session.buffer.is_empty
            assert session.report_pending is False
        assert det.violations == [], det.report()

    def test_upf_failover_rebuild_is_race_clean(self):
        """The §3.5 unit-failure path: checkpointed CP state restores
        into a survivor unit, the UPF session is rebuilt through the
        survivor's PFCP handler, and data flows — all race-free."""
        env = Environment()
        with races.traced(env=env) as det:
            primary = FiveGCore(env, SystemConfig.l25gc())
            survivor = FiveGCore(env, SystemConfig.l25gc())
            for core in (primary, survivor):
                for gnb in core.gnbs.values():
                    gnb.radio_latency = 0.0
            runner = ProcedureRunner(primary)
            ue = primary.add_ue(SUPI)
            framework = ResiliencyFramework(
                env,
                {"amf": primary.amf, "smf": primary.smf},
                sync_period=5 * MS,
            )
            framework.start()
            detail = {}

            def scenario():
                yield from runner.register_ue(ue, gnb_id=1)
                framework.log_message(
                    "reg", Direction.UPLINK, PacketKind.CONTROL
                )
                yield from framework.commit_event()
                result = yield from runner.establish_session(ue)
                detail.update(result.detail)
                framework.log_message(
                    "est", Direction.UPLINK, PacketKind.CONTROL
                )
                yield from framework.commit_event()
                yield env.timeout(50 * MS)

            env.process(scenario())
            env.run(until=env.now + 1.0)
            framework.stop()

            survivor.amf.restore(framework.remote.state_of("amf"))
            survivor.smf.restore(framework.remote.state_of("smf"))
            survivor.ues[ue.supi] = ue
            survivor.gnbs[1].connect(ue)
            sm = survivor.smf.context_for(ue.supi, 1)
            establishment = build_session_establishment(
                seid=sm.seid,
                sequence=survivor.smf.next_sequence(),
                ue_ip=sm.ue_ip,
                upf_address=survivor.UPF_ADDRESS,
                ul_teid=sm.ul_teid,
                gnb_address=survivor.gnbs[1].address,
                dl_teid=sm.dl_teid,
            )
            survivor.upf_c.handle(establishment)
            survivor.dl_routes[sm.dl_teid] = (survivor.gnbs[1], ue)

            before = len(ue.received)
            survivor.inject_downlink(
                Packet(
                    direction=Direction.DOWNLINK,
                    flow=FiveTuple(src_ip=1, dst_ip=detail["ue_ip"],
                                   src_port=80, dst_port=4000),
                    created_at=env.now,
                )
            )
            env.run(until=env.now + 1 * MS)
            assert len(ue.received) == before + 1
        assert det.violations == [], det.report()


class TestTraceReplay:
    def _seeded_trace(self, tmp_path, name="trace.jsonl"):
        with races.traced(record=True) as det:
            session = _session()
            with det.role("upf-u"):
                session.report_pending = True
            with det.role("upf-c"):
                session.report_pending = False
        assert det.violations
        path = tmp_path / name
        det.dump_trace(str(path), header={"test": "seeded"})
        return path, det

    def test_replay_reproduces_violations(self, tmp_path):
        path, live = self._seeded_trace(tmp_path)
        replayed = races.replay(races._load_trace(str(path)))
        assert [v.kind for v in replayed.violations] == [
            v.kind for v in live.violations
        ]
        [violation] = replayed.violations
        assert violation.part == "report_pending"
        assert violation.second.role == "upf-c"
        assert "test_analysis_races.py" in violation.second.site

    def test_begin_event_resets_between_runs(self, tmp_path):
        """Two appended runs replay independently: recycled object ids
        from the second run must not alias structures of the first."""
        path, _live = self._seeded_trace(tmp_path)
        with races.traced(record=True) as det:
            session = _session()
            with det.role("upf-u"):
                session.report_pending = True
        assert det.violations == []
        det.dump_trace(str(path), header={"test": "clean"})
        replayed = races.replay(races._load_trace(str(path)))
        assert [v.kind for v in replayed.violations] == ["non-owner-write"]

    def test_cli_exit_one_on_violations(self, tmp_path, capsys):
        path, _ = self._seeded_trace(tmp_path)
        assert races.main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "non-owner-write" in out
        assert "access(es)" in out

    def test_cli_exit_zero_on_clean_trace(self, tmp_path, capsys):
        with races.traced(record=True) as det:
            session = _session()
            with det.role("upf-u"):
                session.report_pending = True
        path = tmp_path / "clean.jsonl"
        det.dump_trace(str(path), header={"test": "clean"})
        assert races.main([str(path)]) == 0

    def test_cli_exit_two_on_missing_file(self, tmp_path, capsys):
        assert races.main([str(tmp_path / "nope.jsonl")]) == 2

    def test_cli_json_output(self, tmp_path, capsys):
        path, _ = self._seeded_trace(tmp_path)
        assert races.main(["--json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"][0]["kind"] == "non-owner-write"

    def test_dump_requires_recording(self, tmp_path):
        det = races.RaceDetector()
        with pytest.raises(ValueError):
            det.dump_trace(str(tmp_path / "x.jsonl"))
