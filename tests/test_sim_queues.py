"""Tests for waitable stores and resources."""

import pytest

from repro.sim import (
    Environment,
    PriorityStore,
    QueueFullError,
    Resource,
    SimulationError,
    Store,
)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def proc():
            yield store.put("a")
            item = yield store.get()
            return item

        process = env.process(proc())
        env.run()
        assert process.value == "a"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(2.0)
            yield store.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(2.0, "x")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for value in (1, 2, 3):
            store.put_nowait(value)
        assert [store.get_nowait() for _ in range(3)] == [1, 2, 3]

    def test_bounded_put_nowait_raises(self):
        env = Environment()
        store = Store(env, capacity=2)
        store.put_nowait(1)
        store.put_nowait(2)
        with pytest.raises(QueueFullError):
            store.put_nowait(3)

    def test_put_nowait_drop_counts(self):
        env = Environment()
        store = Store(env, capacity=1)
        assert store.put_nowait_drop("keep")
        assert not store.put_nowait_drop("dropped")
        assert store.drops == 1
        assert store.items == ["keep"]

    def test_blocking_put_admitted_after_get(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put_nowait("first")
        admitted = []

        def producer():
            yield store.put("second")
            admitted.append(env.now)

        def consumer():
            yield env.timeout(1.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert admitted == [1.0]
        assert store.items == ["second"]

    def test_get_nowait_empty_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env).get_nowait()

    def test_clear_returns_items(self):
        env = Environment()
        store = Store(env)
        for value in range(5):
            store.put_nowait(value)
        assert store.clear() == [0, 1, 2, 3, 4]
        assert len(store) == 0

    def test_zero_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_put_to_waiting_getter_bypasses_queue(self):
        env = Environment()
        store = Store(env, capacity=1)
        results = []

        def consumer():
            item = yield store.get()
            results.append(item)

        env.process(consumer())
        env.run()
        store.put_nowait("direct")
        env.run()
        assert results == ["direct"]
        assert len(store) == 0


class TestPriorityStore:
    def test_orders_by_priority(self):
        env = Environment()
        store = PriorityStore(env)
        for item in ((3, "c"), (1, "a"), (2, "b")):
            store.put_nowait(item)
        assert store.get_nowait() == (1, "a")
        assert store.get_nowait() == (2, "b")
        assert store.get_nowait() == (3, "c")

    def test_len_and_items_sorted(self):
        env = Environment()
        store = PriorityStore(env)
        store.put_nowait(5)
        store.put_nowait(1)
        assert len(store) == 2
        assert store.items == [1, 5]

    def test_blocking_get(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def consumer():
            got.append((yield store.get()))

        env.process(consumer())

        def producer():
            yield env.timeout(1.0)
            store.put_nowait(7)

        env.process(producer())
        env.run()
        assert got == [7]

    def test_capacity_respected(self):
        env = Environment()
        store = PriorityStore(env, capacity=1)
        store.put_nowait(1)
        with pytest.raises(QueueFullError):
            store.put_nowait(2)


class TestResource:
    def test_capacity_limits_concurrency(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        concurrency = {"now": 0, "max": 0}

        def worker():
            yield resource.request()
            concurrency["now"] += 1
            concurrency["max"] = max(concurrency["max"], concurrency["now"])
            yield env.timeout(1.0)
            concurrency["now"] -= 1
            resource.release()

        for _ in range(6):
            env.process(worker())
        env.run()
        assert concurrency["max"] == 2

    def test_release_without_request_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env).release()

    def test_queued_count(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder():
            yield resource.request()
            yield env.timeout(10.0)
            resource.release()

        def waiter():
            yield resource.request()
            resource.release()

        env.process(holder())
        env.process(waiter())
        env.run(until=5.0)
        assert resource.in_use == 1
        assert resource.queued == 1

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)
