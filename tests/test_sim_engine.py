"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    MS,
    US,
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == pytest.approx(0.0)

    def test_custom_start_time(self):
        assert Environment(initial_time=5.0).now == pytest.approx(5.0)

    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(1.5)
        env.run()
        assert env.now == pytest.approx(1.5)

    def test_run_until_advances_even_without_events(self):
        env = Environment()
        env.run(until=2.0)
        assert env.now == pytest.approx(2.0)

    def test_run_until_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(SimulationError):
            env.run(until=5.0)

    def test_run_until_does_not_process_later_events(self):
        env = Environment()
        fired = []
        env.timeout(5.0).callbacks.append(lambda event: fired.append(1))
        env.run(until=2.0)
        assert fired == []
        assert env.now == pytest.approx(2.0)

    def test_unit_constants(self):
        assert US == pytest.approx(1e-6)
        assert MS == pytest.approx(1e-3)


class TestEvents:
    def test_succeed_delivers_value(self):
        env = Environment()
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("hello")
        env.run()
        assert seen == ["hello"]

    def test_double_trigger_raises(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_unhandled_failure_propagates(self):
        env = Environment()
        env.event().fail(ValueError("boom"))
        with pytest.raises(ValueError):
            env.run()

    def test_defused_failure_does_not_crash(self):
        env = Environment()
        env.event().fail(ValueError("boom")).defused()
        env.run()  # no raise

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_negative_timeout_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_step_with_empty_heap_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()


class TestProcesses:
    def test_sequential_timeouts(self):
        env = Environment()
        trace = []

        def proc():
            yield env.timeout(1.0)
            trace.append(env.now)
            yield env.timeout(2.0)
            trace.append(env.now)

        env.process(proc())
        env.run()
        assert trace == [1.0, 3.0]

    def test_process_return_value(self):
        env = Environment()

        def inner():
            yield env.timeout(1.0)
            return 42

        def outer():
            value = yield env.process(inner())
            return value * 2

        result = env.process(outer())
        env.run()
        assert result.value == 84

    def test_yield_from_composition(self):
        env = Environment()

        def leaf():
            yield env.timeout(1.0)
            return "leaf"

        def root():
            value = yield from leaf()
            return value + "-root"

        process = env.process(root())
        env.run()
        assert process.value == "leaf-root"

    def test_yield_non_event_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_in_process_fails_it(self):
        env = Environment()

        def bad():
            yield env.timeout(1.0)
            raise RuntimeError("inside")

        def watcher():
            process = env.process(bad())
            try:
                yield process
            except RuntimeError as exc:
                return str(exc)

        result = env.process(watcher())
        env.run()
        assert result.value == "inside"

    def test_interrupt_wakes_process(self):
        env = Environment()
        trace = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                trace.append((env.now, interrupt.cause))

        process = env.process(sleeper())

        def interrupter():
            yield env.timeout(1.0)
            process.interrupt("wake up")

        env.process(interrupter())
        env.run()
        assert trace == [(1.0, "wake up")]

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick():
            yield env.timeout(0.1)

        process = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_is_alive(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_waiting_on_already_processed_event(self):
        env = Environment()
        pre = env.timeout(0.0, value="early")
        env.run()
        assert pre.processed

        def late():
            value = yield pre
            return value

        process = env.process(late())
        env.run()
        assert process.value == "early"


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc():
            yield env.all_of([env.timeout(1.0), env.timeout(3.0)])
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 3.0

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc():
            yield env.any_of([env.timeout(1.0), env.timeout(3.0)])
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 1.0

    def test_and_or_operators(self):
        env = Environment()
        both = env.timeout(1.0) & env.timeout(2.0)
        either = env.timeout(1.0) | env.timeout(2.0)
        assert isinstance(both, AllOf)
        assert isinstance(either, AnyOf)
        env.run()
        assert both.triggered and either.triggered

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        condition = env.all_of([])
        assert condition.triggered


class TestDeterminism:
    def test_same_time_events_fire_in_schedule_order(self):
        env = Environment()
        order = []
        for index in range(10):
            env.timeout(1.0).callbacks.append(
                lambda event, i=index: order.append(i)
            )
        env.run()
        assert order == list(range(10))

    def test_repeated_runs_identical(self):
        def run_once():
            env = Environment()
            trace = []

            def worker(delay, tag):
                yield env.timeout(delay)
                trace.append((env.now, tag))
                yield env.timeout(delay)
                trace.append((env.now, tag))

            for index in range(5):
                env.process(worker(0.1 * (index + 1), index))
            env.run()
            return trace

        assert run_once() == run_once()

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(4.0)
        assert env.peek() == 4.0
