"""Flow-cache fast path: unit, integration, and property tests.

The invariant that matters: **a UPF-U with the flow cache on is
observationally identical to one with it off** — same per-packet
outcomes, bit-identical ForwardingStats — under any interleaving of
packets and rule mutations.  The property test replays randomized
interleavings against three stacks at once (cache-on/PartitionSort,
cache-off/PartitionSort, cache-off/Linear as the 3GPP oracle) and the
stale-entry tests pin down each epoch-bump site individually.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifier import LinearClassifier, Rule, exact
from repro.obs.metrics import MetricsRegistry
from repro.pfcp import ies as pfcp_ies
from repro.sim import Environment
from repro.up import (
    FAR,
    FARAction,
    FlowCache,
    PDR,
    QerEnforcer,
    RuleEpoch,
    SessionTable,
    TokenBucket,
    UPFSession,
    UPFUserPlane,
    UsageCounter,
    packet_key,
)
from repro.net import Direction, FiveTuple, Packet

GNB = 0xC0A80201
DN_IP = 0x08080808
UE_BASE = 0x0A3C0000


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------
def make_session(seid, classifier_class, qer=False, urr=False):
    """A session with UL+DL PDRs, forward FARs, optional QER/URR."""
    ue_ip = UE_BASE + seid
    ul_teid = 0x100 + seid
    session = UPFSession(
        seid=seid,
        ue_ip=ue_ip,
        ul_teid=ul_teid,
        classifier_class=classifier_class,
    )
    session.install_pdr(
        PDR(
            pdr_id=1,
            precedence=10,
            match=Rule.from_fields(
                priority=100,
                rule_id=1,
                far_id=1,
                teid=exact(ul_teid),
                source_iface=exact(pfcp_ies.ACCESS),
            ),
            far_id=1,
            qer_id=1 if qer else None,
            urr_id=1 if urr else None,
            outer_header_removal=True,
            source_interface=pfcp_ies.ACCESS,
        )
    )
    session.install_pdr(
        PDR(
            pdr_id=2,
            precedence=10,
            match=Rule.from_fields(
                priority=100,
                rule_id=2,
                far_id=2,
                dst_ip=exact(ue_ip),
                source_iface=exact(pfcp_ies.CORE),
            ),
            far_id=2,
            qer_id=1 if qer else None,
            urr_id=1 if urr else None,
            source_interface=pfcp_ies.CORE,
        )
    )
    session.install_far(
        FAR(far_id=1, action=FARAction(destination_interface=pfcp_ies.CORE))
    )
    session.install_far(
        FAR(
            far_id=2,
            action=FARAction(
                destination_interface=pfcp_ies.ACCESS,
                outer_teid=0x500 + seid,
                outer_address=GNB,
            ),
        )
    )
    if qer:
        session.install_qer_enforcer(
            QerEnforcer(
                qer_id=1,
                ul_bucket=TokenBucket(8000.0, burst_bytes=300),
                dl_bucket=TokenBucket(8000.0, burst_bytes=300),
            )
        )
    if urr:
        session.install_usage_counter(
            UsageCounter(urr_id=1, volume_threshold_bytes=256)
        )
    return session


def ul_packet(seid, src_port=4000):
    return Packet(
        direction=Direction.UPLINK,
        teid=0x100 + seid,
        flow=FiveTuple(
            src_ip=UE_BASE + seid,
            dst_ip=DN_IP,
            src_port=src_port,
            dst_port=80,
        ),
        size=100,
    )


def dl_packet(seid, src_port=80):
    return Packet(
        direction=Direction.DOWNLINK,
        flow=FiveTuple(
            src_ip=DN_IP,
            dst_ip=UE_BASE + seid,
            src_port=src_port,
            dst_port=4000,
        ),
        size=100,
    )


def build_stack(flow_cache, classifier_class, **kwargs):
    table = SessionTable()
    upf = UPFUserPlane(
        Environment(), table, flow_cache=flow_cache, **kwargs
    )
    upf.classifier_class = classifier_class  # remembered by the harness
    return table, upf


# ----------------------------------------------------------------------
# FlowCache unit tests
# ----------------------------------------------------------------------
class TestFlowCacheStructure:
    def test_insert_lookup_hit(self):
        cache = FlowCache(RuleEpoch(), capacity=4)
        cache.insert("k", "sess", "pdr", "far")
        entry = cache.lookup("k")
        assert entry is not None and entry.pdr == "pdr"
        assert (cache.hits, cache.misses) == (1, 0)

    def test_miss_counts(self):
        cache = FlowCache(RuleEpoch(), capacity=4)
        assert cache.lookup("absent") is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_epoch_bump_invalidates_lazily(self):
        epoch = RuleEpoch()
        cache = FlowCache(epoch, capacity=4)
        cache.insert("k", "sess", "pdr", "far")
        epoch.bump()
        assert cache.lookup("k") is None
        assert cache.stale == 1
        assert len(cache) == 0  # the stale entry was dropped

    def test_lru_eviction_and_accounting(self):
        cache = FlowCache(RuleEpoch(), capacity=2)
        cache.insert("a", None, 1, None)
        cache.insert("b", None, 2, None)
        cache.lookup("a")  # "a" becomes most-recent
        cache.insert("c", None, 3, None)
        assert cache.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_reinsert_does_not_evict(self):
        cache = FlowCache(RuleEpoch(), capacity=2)
        cache.insert("a", None, 1, None)
        cache.insert("b", None, 2, None)
        cache.insert("a", None, 9, None)  # replacement, not growth
        assert cache.evictions == 0
        assert cache.lookup("a").pdr == 9

    def test_purge_session(self):
        cache = FlowCache(RuleEpoch(), capacity=8)
        sess_a, sess_b = object(), object()
        cache.insert("a1", sess_a, 1, None)
        cache.insert("a2", sess_a, 2, None)
        cache.insert("b1", sess_b, 3, None)
        assert cache.purge_session(sess_a) == 2
        assert cache.purged == 2
        assert len(cache) == 1 and "b1" in cache

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlowCache(RuleEpoch(), capacity=0)

    def test_register_into_exports_live_gauges(self):
        registry = MetricsRegistry()
        epoch = RuleEpoch()
        cache = FlowCache(epoch, capacity=4)
        cache.register_into(registry)
        cache.insert("k", None, 1, None)
        cache.lookup("k")
        cache.lookup("gone")
        assert registry.gauge("flow_cache.hits").value == 1
        assert registry.gauge("flow_cache.misses").value == 1
        assert registry.gauge("flow_cache.entries").value == 1
        assert registry.gauge("flow_cache.hit_rate").value == 0.5


# ----------------------------------------------------------------------
# Pipeline integration
# ----------------------------------------------------------------------
class TestPipelineFastPath:
    def test_first_packet_fills_then_hits(self):
        table, upf = build_stack(True, None)
        table.add(make_session(1, LinearClassifier))
        assert upf.process(ul_packet(1)) == "forwarded-ul"
        assert upf.flow_cache.inserts == 1
        assert upf.process(ul_packet(1)) == "forwarded-ul"
        assert upf.flow_cache.hits == 1
        assert upf.stats.forwarded_ul == 2

    def test_distinct_flows_get_distinct_entries(self):
        table, upf = build_stack(True, None)
        table.add(make_session(1, LinearClassifier))
        upf.process(ul_packet(1, src_port=1000))
        upf.process(ul_packet(1, src_port=2000))
        assert len(upf.flow_cache) == 2

    def test_install_pdr_invalidates(self):
        table, upf = build_stack(True, None)
        session = make_session(1, LinearClassifier)
        table.add(session)
        upf.process(dl_packet(1))
        # Install a higher-priority DL PDR pointing at a drop FAR: the
        # cached decision must not survive.
        session.install_far(FAR(far_id=9, action=FARAction(drop=True)))
        session.install_pdr(
            PDR(
                pdr_id=3,
                precedence=1,
                match=Rule.from_fields(
                    priority=900,
                    rule_id=3,
                    far_id=9,
                    dst_ip=exact(UE_BASE + 1),
                    source_iface=exact(pfcp_ies.CORE),
                ),
                far_id=9,
                source_interface=pfcp_ies.CORE,
            )
        )
        assert upf.process(dl_packet(1)) == "drop-action"
        assert upf.flow_cache.stale >= 1

    def test_remove_pdr_invalidates(self):
        table, upf = build_stack(True, None)
        session = make_session(1, LinearClassifier)
        table.add(session)
        assert upf.process(ul_packet(1)) == "forwarded-ul"
        session.remove_pdr(1)
        assert upf.process(ul_packet(1)) == "drop-no-pdr"

    def test_update_far_invalidates(self):
        table, upf = build_stack(True, None)
        session = make_session(1, LinearClassifier)
        table.add(session)
        assert upf.process(dl_packet(1)) == "forwarded-dl"
        session.update_far(
            FAR(far_id=2, action=FARAction(forward=False, buffer=True))
        )
        assert upf.process(dl_packet(1)) == "buffered"

    def test_session_removal_invalidates_and_purges(self):
        table, upf = build_stack(True, None)
        session = make_session(1, LinearClassifier)
        table.add(session)
        upf.process(ul_packet(1))
        upf.process(dl_packet(1))
        assert len(upf.flow_cache) == 2
        table.remove(1)
        assert len(upf.flow_cache) == 0  # purged eagerly
        assert upf.process(ul_packet(1)) == "drop-no-session"

    def test_qer_policing_runs_on_cache_hits(self):
        """The MBR bucket must drain per packet even on the fast path."""
        table, upf = build_stack(True, None)
        table.add(make_session(1, LinearClassifier, qer=True))
        outcomes = [upf.process(ul_packet(1)) for _ in range(5)]
        # burst 300 B at 100 B/packet: 3 conform, the rest police.
        assert outcomes == ["forwarded-ul"] * 3 + ["drop-qos"] * 2
        assert upf.flow_cache.hits == 4

    def test_urr_accounting_runs_on_cache_hits(self):
        table, upf = build_stack(True, None)
        session = make_session(1, LinearClassifier, urr=True)
        table.add(session)
        for _ in range(4):
            upf.process(ul_packet(1))
        assert session.usage_counters[1].uplink_bytes == 400
        # 256 B threshold: reports at 300 B and (next window) at 600 B.
        assert upf.stats.usage_reports == 1

    def test_teidless_uplink_bypasses_cache(self):
        table, upf = build_stack(True, None)
        table.add(make_session(1, LinearClassifier))
        packet = ul_packet(1)
        packet.teid = None
        assert upf.process(packet) == "drop-no-session"
        assert len(upf.flow_cache) == 0

    def test_cache_off_by_default(self):
        table, upf = build_stack(False, None)
        assert upf.flow_cache is None
        table.add(make_session(1, LinearClassifier))
        assert upf.process(ul_packet(1)) == "forwarded-ul"


class TestDrainStateLifecycle:
    def test_drain_until_evicted_on_session_removal(self):
        table, upf = build_stack(False, None)
        session = make_session(1, LinearClassifier)
        table.add(session)
        session.update_far(
            FAR(far_id=2, action=FARAction(forward=False, buffer=True))
        )
        upf.process(dl_packet(1))
        session.update_far(FAR(far_id=2, action=FARAction(forward=True)))
        upf.flush_session(session)
        assert session.seid in upf._drain_until
        table.remove(1)
        assert session.seid not in upf._drain_until

    def test_unrelated_drain_state_survives(self):
        table, upf = build_stack(False, None)
        for seid in (1, 2):
            session = make_session(seid, LinearClassifier)
            table.add(session)
            session.update_far(
                FAR(far_id=2, action=FARAction(forward=False, buffer=True))
            )
            upf.process(dl_packet(seid))
            session.update_far(FAR(far_id=2, action=FARAction(forward=True)))
            upf.flush_session(session)
        table.remove(1)
        assert 1 not in upf._drain_until
        assert 2 in upf._drain_until


# ----------------------------------------------------------------------
# Full-system wiring (SystemConfig -> FiveGCore -> metrics)
# ----------------------------------------------------------------------
class TestFullSystemWiring:
    def _core_with_traffic(self, flow_cache):
        from repro.cp import FiveGCore, ProcedureRunner, SystemConfig
        from repro.sim import Environment as CoreEnv

        env = CoreEnv()
        config = SystemConfig.l25gc()
        config.flow_cache = flow_cache
        core = FiveGCore(env, config)
        for gnb in core.gnbs.values():
            gnb.radio_latency = 0.0
        runner = ProcedureRunner(core)
        ue = core.add_ue("imsi-208930000009001")
        detail = {}

        def lifecycle():
            yield from runner.register_ue(ue, gnb_id=1)
            result = yield from runner.establish_session(ue)
            detail.update(result.detail)

        env.process(lifecycle())
        env.run()
        for _ in range(20):
            core.inject_downlink(
                Packet(
                    direction=Direction.DOWNLINK,
                    flow=FiveTuple(
                        src_ip=1, dst_ip=detail["ue_ip"],
                        src_port=80, dst_port=4000,
                    ),
                    created_at=env.now,
                )
            )
        env.run()
        return core, ue

    def test_config_flag_enables_cache_and_exports_gauges(self):
        core, ue = self._core_with_traffic(True)
        assert core.upf_u.flow_cache is not None
        assert len(ue.received) == 20
        assert core.upf_u.flow_cache.hits == 19  # first packet fills
        registry = core.metrics_registry()
        assert registry.gauge("flow_cache.hits").value == 19
        assert registry.gauge("flow_cache.hit_rate").value == 0.95

    def test_cache_off_core_identical_delivery(self):
        cached_core, cached_ue = self._core_with_traffic(True)
        plain_core, plain_ue = self._core_with_traffic(False)
        assert plain_core.upf_u.flow_cache is None
        assert len(cached_ue.received) == len(plain_ue.received)
        assert cached_core.upf_u.stats == plain_core.upf_u.stats


# ----------------------------------------------------------------------
# Epoch bookkeeping
# ----------------------------------------------------------------------
class TestEpochWiring:
    def test_table_add_adopts_shared_epoch(self):
        table = SessionTable()
        session = make_session(1, LinearClassifier)
        private = session.epoch
        table.add(session)
        assert session.epoch is table.epoch
        assert session.epoch is not private

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.install_far(FAR(far_id=7)),
            lambda s: s.update_far(FAR(far_id=2)),
            lambda s: s.remove_pdr(1),
            lambda s: s.install_qer_enforcer(QerEnforcer(qer_id=5)),
            lambda s: s.install_usage_counter(UsageCounter(urr_id=5)),
        ],
        ids=[
            "install_far",
            "update_far",
            "remove_pdr",
            "install_qer_enforcer",
            "install_usage_counter",
        ],
    )
    def test_every_mutator_bumps(self, mutate):
        table = SessionTable()
        session = make_session(1, LinearClassifier)
        table.add(session)
        before = table.epoch.value
        mutate(session)
        assert table.epoch.value > before

    def test_packet_key_matches_session_key(self):
        packet = ul_packet(3)
        session = make_session(3, LinearClassifier)
        assert packet_key(packet) == session._packet_key(packet)


# ----------------------------------------------------------------------
# Property test: cache-on == cache-off == linear oracle
# ----------------------------------------------------------------------
SEIDS = (1, 2, 3)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("ul"), st.sampled_from(SEIDS),
                  st.integers(1, 3)),
        st.tuples(st.just("dl"), st.sampled_from(SEIDS),
                  st.integers(1, 3)),
        st.tuples(st.just("add"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("del"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("buffer-far"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("forward-far"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("drop-pdr"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("flush"), st.sampled_from(SEIDS), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


class _Harness:
    """One UPF stack driven by the shared op sequence."""

    def __init__(self, flow_cache, classifier_class):
        self.classifier_class = classifier_class
        self.table = SessionTable()
        self.upf = UPFUserPlane(
            Environment(),
            self.table,
            flow_cache=flow_cache,
            flow_cache_capacity=8,  # tiny: exercise LRU eviction too
        )
        self.outcomes = []

    def step(self, op, seid, variant):
        table, upf = self.table, self.upf
        session = table.by_seid(seid)
        if op == "ul":
            self.outcomes.append(
                upf.process(ul_packet(seid, src_port=4000 + variant))
            )
        elif op == "dl":
            self.outcomes.append(
                upf.process(dl_packet(seid, src_port=80 + variant))
            )
        elif op == "add":
            if session is None:
                table.add(
                    make_session(
                        seid, self.classifier_class, qer=True, urr=True
                    )
                )
        elif op == "del":
            table.remove(seid)
        elif op == "buffer-far" and session is not None:
            session.update_far(
                FAR(
                    far_id=2,
                    action=FARAction(
                        forward=False, buffer=True, notify_cp=True
                    ),
                )
            )
        elif op == "forward-far" and session is not None:
            session.update_far(FAR(far_id=2, action=FARAction(forward=True)))
        elif op == "drop-pdr" and session is not None:
            if 2 in session.pdrs:
                session.remove_pdr(2)
            else:
                # Re-install the DL PDR removed by a previous op.
                fresh = make_session(seid, self.classifier_class)
                session.install_pdr(fresh.pdrs[2])
        elif op == "flush" and session is not None:
            upf.flush_session(session)


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_cache_on_equals_cache_off_equals_oracle(ops):
    from repro.classifier import PartitionSortClassifier

    cached = _Harness(True, PartitionSortClassifier)
    plain = _Harness(False, PartitionSortClassifier)
    oracle = _Harness(False, LinearClassifier)
    for op, seid, variant in ops:
        for harness in (cached, plain, oracle):
            harness.step(op, seid, variant)
        # Outcomes must agree after *every* packet, not just at the
        # end — stale entries may never influence a single decision.
        assert cached.outcomes == plain.outcomes == oracle.outcomes
    assert cached.upf.stats == plain.upf.stats == oracle.upf.stats


@settings(max_examples=25, deadline=None)
@given(_ops)
def test_stale_entries_never_survive_mutations(ops):
    """After any op sequence, every resident entry is re-derivable."""
    from repro.classifier import PartitionSortClassifier

    harness = _Harness(True, PartitionSortClassifier)
    for op, seid, variant in ops:
        harness.step(op, seid, variant)
    cache = harness.upf.flow_cache
    epoch = harness.table.epoch.value
    for key, entry in cache._entries.items():
        if entry.generation != epoch:
            continue  # stale: would be dropped on its next probe
        # A current-epoch entry must match what the pipeline derives.
        session = harness.table.by_seid(entry.session.seid)
        assert session is entry.session
        pdr = session.classifier.lookup(key)
        assert pdr is not None and pdr.rule_id == entry.pdr.pdr_id
        assert session.fars.get(entry.pdr.far_id) is entry.far
