"""Tests for the determinism lint pass (repro.analysis.lint).

Every rule gets at least one seeded-violation fixture that must fire
and one clean fixture that must not, plus coverage for the noqa
suppression convention, JSON output, and CLI exit codes.
"""

import json
import textwrap

import pytest

from repro.analysis import rules as rules_mod
from repro.analysis.lint import (
    apply_baseline,
    iter_python_files,
    lint_file,
    lint_paths,
    load_baseline,
    main,
)
from repro.analysis.rules import RULE_REGISTRY, Finding, all_rules


def run_lint(source, path="src/repro/example.py"):
    """Lint an in-memory snippet as if it lived at ``path``."""
    return lint_file(path, source=textwrap.dedent(source))


def codes(findings):
    return [f.code for f in findings]


class TestRegistry:
    def test_all_rules_registered(self):
        assert set(RULE_REGISTRY) == {
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
            "R008", "R009",
        }

    def test_all_rules_instantiates_in_code_order(self):
        assert [r.code for r in all_rules()] == sorted(RULE_REGISTRY)

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError):
            @rules_mod.register_rule
            class Duplicate(rules_mod.Rule):
                code = "R001"

    def test_rules_are_pluggable(self):
        class Custom(rules_mod.Rule):
            code = "R999"
            name = "custom"

            def check(self, ctx):
                yield self.finding(ctx, ctx.tree, "always fires")

        findings = lint_file(
            "src/repro/x.py", rules=[Custom()], source="x = 1\n"
        )
        assert codes(findings) == ["R999"]


class TestWallClockR001:
    def test_fires_on_time_time(self):
        findings = run_lint(
            """
            import time
            def stamp():
                return time.time()
            """
        )
        assert "R001" in codes(findings)

    def test_fires_on_datetime_now(self):
        findings = run_lint(
            """
            import datetime
            def stamp():
                return datetime.datetime.now()
            """
        )
        assert "R001" in codes(findings)

    def test_fires_on_perf_counter_outside_benchmarks(self):
        findings = run_lint(
            """
            import time
            begin = time.perf_counter()
            """,
            path="src/repro/sim/engine_extra.py",
        )
        assert "R001" in codes(findings)

    def test_perf_counter_allowed_in_experiments(self):
        findings = run_lint(
            """
            import time
            begin = time.perf_counter()
            """,
            path="src/repro/experiments/figXX.py",
        )
        assert "R001" not in codes(findings)

    def test_clean_env_now_does_not_fire(self):
        findings = run_lint(
            """
            def stamp(env):
                return env.now
            """
        )
        assert "R001" not in codes(findings)


class TestUnseededRandomR002:
    def test_fires_on_module_level_random(self):
        findings = run_lint(
            """
            import random
            def jitter():
                return random.random()
            """
        )
        assert "R002" in codes(findings)

    def test_fires_on_seedless_random_instance(self):
        findings = run_lint(
            """
            import random
            rng = random.Random()
            """
        )
        assert "R002" in codes(findings)

    def test_seeded_random_instance_allowed(self):
        findings = run_lint(
            """
            import random
            rng = random.Random(42)
            """
        )
        assert "R002" not in codes(findings)

    def test_stream_rng_usage_allowed(self):
        findings = run_lint(
            """
            from repro.sim.rng import StreamRNG
            rng = StreamRNG(7).stream("arrivals")
            value = rng.random()
            """
        )
        assert "R002" not in codes(findings)


class TestBlockingSleepR003:
    def test_fires_on_time_sleep(self):
        findings = run_lint(
            """
            import time
            def handler(message, bus):
                time.sleep(0.1)
            """
        )
        assert "R003" in codes(findings)

    def test_fires_on_imported_sleep_alias(self):
        findings = run_lint(
            """
            from time import sleep as snooze
            def proc(env):
                snooze(1)
            """
        )
        assert "R003" in codes(findings)

    def test_env_timeout_allowed(self):
        findings = run_lint(
            """
            def proc(env):
                yield env.timeout(0.1)
            """
        )
        assert "R003" not in codes(findings)


class TestFrozenMessageR004:
    def test_fires_on_unfrozen_dataclass_in_message_module(self):
        findings = run_lint(
            """
            from dataclasses import dataclass

            @dataclass
            class SomeRequest:
                supi: str = "imsi-1"
            """,
            path="src/repro/sbi/messages.py",
        )
        assert "R004" in codes(findings)

    def test_fires_on_dataclass_call_without_frozen(self):
        findings = run_lint(
            """
            from dataclasses import dataclass

            @dataclass(eq=True)
            class SomeIE:
                value: int = 0
            """,
            path="src/repro/pfcp/ies.py",
        )
        assert "R004" in codes(findings)

    def test_frozen_dataclass_passes(self):
        findings = run_lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SomeRequest:
                supi: str = "imsi-1"
            """,
            path="src/repro/sbi/messages.py",
        )
        assert "R004" not in codes(findings)

    def test_non_message_module_not_checked(self):
        findings = run_lint(
            """
            from dataclasses import dataclass

            @dataclass
            class RuntimeState:
                counter: int = 0
            """,
            path="src/repro/up/session.py",
        )
        assert "R004" not in codes(findings)


class TestNowEqualityR005:
    def test_fires_on_exact_equality(self):
        findings = run_lint("ok = env.now == 1.5\n")
        assert "R005" in codes(findings)

    def test_fires_on_not_equal(self):
        findings = run_lint("ok = 2.0 != env.now\n")
        assert "R005" in codes(findings)

    def test_approx_comparison_allowed(self):
        findings = run_lint(
            """
            import pytest
            ok = env.now == pytest.approx(1.5)
            """
        )
        assert "R005" not in codes(findings)

    def test_inequality_allowed(self):
        findings = run_lint("ok = env.now >= 1.5\n")
        assert "R005" not in codes(findings)


class TestMutableDefaultR006:
    def test_fires_on_list_default(self):
        findings = run_lint(
            """
            def collect(items=[]):
                return items
            """
        )
        assert "R006" in codes(findings)

    def test_fires_on_dict_kwonly_default(self):
        findings = run_lint(
            """
            def configure(*, options={}):
                return options
            """
        )
        assert "R006" in codes(findings)

    def test_none_default_allowed(self):
        findings = run_lint(
            """
            def collect(items=None):
                return items or []
            """
        )
        assert "R006" not in codes(findings)

    def test_dataclass_field_factory_allowed(self):
        findings = run_lint(
            """
            from dataclasses import dataclass, field

            @dataclass
            class Holder:
                items: list = field(default_factory=list)
            """
        )
        assert "R006" not in codes(findings)


class TestPrintInLibraryR007:
    SNIPPET = """
        def report(value):
            print("value:", value)
        """

    def test_fires_in_library_code(self):
        findings = run_lint(self.SNIPPET, path="src/repro/core/rings.py")
        assert "R007" in codes(findings)

    def test_exempt_in_main_modules(self):
        findings = run_lint(self.SNIPPET, path="src/repro/obs/__main__.py")
        assert "R007" not in codes(findings)

    def test_exempt_in_experiments(self):
        findings = run_lint(
            self.SNIPPET, path="src/repro/experiments/fig08.py"
        )
        assert "R007" not in codes(findings)

    def test_exempt_lint_runner(self):
        findings = run_lint(
            self.SNIPPET, path="src/repro/analysis/lint.py"
        )
        assert "R007" not in codes(findings)

    def test_not_applied_outside_src(self):
        findings = run_lint(self.SNIPPET, path="tests/test_example.py")
        assert "R007" not in codes(findings)

    def test_shadowed_print_method_allowed(self):
        findings = run_lint(
            """
            def emit(writer):
                writer.print("ok")
            """,
            path="src/repro/core/nf.py",
        )
        assert "R007" not in codes(findings)

    def test_noqa_suppresses(self):
        findings = run_lint(
            """
            def debug(value):
                print(value)  # repro: noqa[R007]
            """,
            path="src/repro/core/nf.py",
        )
        assert "R007" not in codes(findings)


class TestNonOwnerMutationR008:
    def test_fires_on_rule_map_write_outside_up(self):
        findings = run_lint(
            """
            def hack(session):
                session.pdrs[1] = "pdr"
            """,
            path="src/repro/cp/smf_extra.py",
        )
        assert "R008" in codes(findings)

    def test_fires_on_report_pending_write_outside_up(self):
        findings = run_lint(
            """
            def clear(session):
                session.report_pending = False
            """,
            path="src/repro/cp/smf_extra.py",
        )
        assert "R008" in codes(findings)

    def test_fires_on_mutating_method_call(self):
        findings = run_lint(
            """
            def purge(table):
                table._by_seid.clear()
            """,
            path="tests/test_fixture_example.py",
        )
        assert "R008" in codes(findings)

    def test_fires_on_del_subscript(self):
        findings = run_lint(
            """
            def drop(session, far_id):
                del session.fars[far_id]
            """,
            path="src/repro/resiliency/helper.py",
        )
        assert "R008" in codes(findings)

    def test_exempt_inside_up_package(self):
        findings = run_lint(
            """
            def install(session):
                session.pdrs[1] = "pdr"
            """,
            path="src/repro/up/session_extra.py",
        )
        assert "R008" not in codes(findings)

    def test_reads_do_not_fire(self):
        findings = run_lint(
            """
            def inspect(session):
                return list(session.pdrs.values())
            """,
            path="src/repro/cp/smf_extra.py",
        )
        assert "R008" not in codes(findings)

    def test_self_attribute_of_other_class_exempt(self):
        findings = run_lint(
            """
            class Unrelated:
                def reset(self):
                    self.pdrs = {}
            """,
            path="src/repro/obs/metrics_extra.py",
        )
        assert "R008" not in codes(findings)

    def test_noqa_suppresses(self):
        findings = run_lint(
            """
            def hack(session):
                session.pdrs[1] = "pdr"  # repro: noqa[R008]
            """,
            path="src/repro/cp/smf_extra.py",
        )
        assert "R008" not in codes(findings)


class TestMissingEpochBumpR009:
    def test_fires_on_unbumped_rule_mutation(self):
        findings = run_lint(
            """
            def install_pdr(self, pdr):
                self.pdrs[pdr.pdr_id] = pdr
            """,
            path="src/repro/up/session_extra.py",
        )
        assert "R009" in codes(findings)

    def test_fires_on_unbumped_pop(self):
        findings = run_lint(
            """
            def remove_far(self, far_id):
                self.fars.pop(far_id, None)
            """,
            path="src/repro/up/session_extra.py",
        )
        assert "R009" in codes(findings)

    def test_bump_in_same_function_passes(self):
        findings = run_lint(
            """
            def install_pdr(self, pdr):
                self.pdrs[pdr.pdr_id] = pdr
                self.epoch.bump()
            """,
            path="src/repro/up/session_extra.py",
        )
        assert "R009" not in codes(findings)

    def test_init_exempt(self):
        findings = run_lint(
            """
            class Session:
                def __init__(self):
                    self.pdrs = {}
                    self.fars = {}
            """,
            path="src/repro/up/session_extra.py",
        )
        assert "R009" not in codes(findings)

    def test_noqa_suppresses(self):
        findings = run_lint(
            """
            def install_pdr(self, pdr):
                self.pdrs[pdr.pdr_id] = pdr  # repro: noqa[R009]
            """,
            path="src/repro/up/session_extra.py",
        )
        assert "R009" not in codes(findings)


class TestSuppression:
    def test_bare_noqa_suppresses_all_codes(self):
        findings = run_lint(
            """
            import time
            t = time.time()  # repro: noqa
            """
        )
        assert findings == []

    def test_coded_noqa_suppresses_only_listed(self):
        findings = run_lint(
            """
            import time
            t = time.time()  # repro: noqa[R002]
            """
        )
        assert "R001" in codes(findings)

    def test_coded_noqa_matching_code(self):
        findings = run_lint(
            """
            import time
            t = time.time()  # repro: noqa[R001]
            """
        )
        assert findings == []


class TestRunnerAndCli:
    def test_repo_is_clean(self):
        """The acceptance gate: no findings beyond the committed
        baseline (which holds only the race-detector test fixtures'
        deliberate ownership violations)."""
        findings = lint_paths(["src", "tests"])
        baseline = load_baseline("analysis-baseline.json")
        fresh, _suppressed = apply_baseline(findings, baseline)
        assert fresh == []

    def test_cli_exit_zero_on_repo(self, capsys):
        assert main(["--baseline", "analysis-baseline.json",
                     "src", "tests"]) == 0

    def test_cli_exit_nonzero_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "bad.py:2:" in out

    def test_cli_json_output(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main(["--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["code"] == "R006"
        assert payload[0]["line"] == 1
        assert payload[0]["severity"] == "error"

    def test_cli_select_filters_rules(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\ndef f(x=[]):\n    pass\n")
        assert main(["--select", "R006", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R006" in out and "R001" not in out

    def test_cli_ignore_filters_rules(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert main(["--ignore", "R001", str(bad)]) == 0

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in sorted(RULE_REGISTRY):
            assert code in out

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings = lint_file(str(bad))
        assert codes(findings) == ["R000"]

    def test_iter_python_files_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "x.py").write_text("")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "y.py").write_text("")
        (tmp_path / "ok.py").write_text("")
        files = list(iter_python_files([str(tmp_path)]))
        assert [f for f in files if f.endswith("ok.py")] == files

    def test_finding_format(self):
        finding = Finding(
            path="src/x.py", line=3, col=7, code="R001",
            severity="error", message="boom",
        )
        assert finding.format() == "src/x.py:3:7: R001 [error] boom"


class TestBaseline:
    BAD = "import time\nt = time.time()\n"

    def _bad_file(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(self.BAD)
        return bad

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        bad = self._bad_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), str(bad)]) == 0
        assert main(["--baseline", str(baseline), str(bad)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined finding(s) suppressed" in out

    def test_new_finding_fails_despite_baseline(self, tmp_path, capsys):
        bad = self._bad_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), str(bad)]) == 0
        bad.write_text(self.BAD + "def f(x=[]):\n    return x\n")
        assert main(["--baseline", str(baseline), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R006" in out and "R001" not in out

    def test_second_instance_of_baselined_violation_fails(
        self, tmp_path, capsys
    ):
        bad = self._bad_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), str(bad)]) == 0
        # Same (path, code, message) a second time exceeds the budget.
        bad.write_text(self.BAD + "u = time.time()\n")
        assert main(["--baseline", str(baseline), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out

    def test_baseline_survives_line_shift(self, tmp_path, capsys):
        bad = self._bad_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), str(bad)]) == 0
        # Pad with comments: same finding, different line number.
        bad.write_text("# padding\n# more padding\n" + self.BAD)
        assert main(["--baseline", str(baseline), str(bad)]) == 0

    def test_fixed_finding_makes_baseline_stale(self, tmp_path, capsys):
        # Paying off the debt without regenerating the baseline fails
        # with exit 2: a stale entry would silently absorb the next
        # regression of the same (path, code, message).
        bad = self._bad_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), str(bad)]) == 0
        bad.write_text("t = 0\n")
        assert main(["--baseline", str(baseline), str(bad)]) == 2
        err = capsys.readouterr().err
        assert "stale baseline entry" in err
        assert "regenerate with --write-baseline" in err
        # Regenerating clears the failure.
        assert main(["--write-baseline", str(baseline), str(bad)]) == 0
        assert main(["--baseline", str(baseline), str(bad)]) == 0

    def test_missing_baseline_file_is_error(self, tmp_path, capsys):
        bad = self._bad_file(tmp_path)
        assert main(["--baseline", str(tmp_path / "nope.json"), str(bad)]) == 2

    def test_baseline_file_format(self, tmp_path):
        bad = self._bad_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), str(bad)]) == 0
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        entry = payload["entries"][0]
        assert entry["code"] == "R001"
        assert entry["count"] == 1
        assert "line" not in entry

    def test_committed_repo_baseline_gates_clean(self, capsys):
        """The committed baseline must keep the repo gate green."""
        assert main(["--baseline", "analysis-baseline.json",
                     "src", "tests"]) == 0


class TestGithubFormat:
    BAD = "import time\nt = time.time()\n"

    def _bad_file(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(self.BAD)
        return bad

    def test_findings_render_as_workflow_annotations(self, tmp_path, capsys):
        bad = self._bad_file(tmp_path)
        assert main(["--format", "github", str(bad)]) == 1
        out = capsys.readouterr().out
        line = out.strip().splitlines()[0]
        assert line.startswith("::error file=")
        assert f"file={bad}" in line
        assert "line=2" in line
        assert "title=R001::" in line

    def test_annotation_escapes_newlines_and_percent(self):
        from repro.analysis.lint import github_annotation
        from repro.analysis.rules import Finding

        finding = Finding(
            path="src/x.py", line=3, col=7, code="R001",
            severity="warning", message="50% broken\nsecond line",
        )
        rendered = github_annotation(finding)
        assert rendered.startswith("::warning file=src/x.py,line=3,col=7")
        assert "\n" not in rendered
        assert "50%25 broken%0Asecond line" in rendered
