"""Tests for the resiliency framework: checkpoints, logger, BFD, failover."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cp.nfs import AMF, SMF
from repro.net import Direction, PacketKind
from repro.resiliency import (
    CheckpointStore,
    LocalReplica,
    PacketLogger,
    ProbeAgent,
    ProbeTarget,
    RemoteReplica,
    ResiliencyFramework,
    apply_delta,
    compute_delta,
)
from repro.sim import MS, Environment


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------
class TestDeltas:
    def test_change_detection(self):
        old = {"a": 1, "b": {"c": 2}}
        new = {"a": 1, "b": {"c": 3}, "d": 4}
        delta = compute_delta(old, new)
        assert delta.changed == {("b", "c"): 3, ("d",): 4}
        assert delta.removed == []

    def test_removal_detection(self):
        delta = compute_delta({"a": 1, "b": 2}, {"a": 1})
        assert delta.removed == [("b",)]

    def test_empty_delta(self):
        delta = compute_delta({"a": {"b": 1}}, {"a": {"b": 1}})
        assert delta.empty

    def test_apply_roundtrip(self):
        old = {"x": {"y": 1, "z": 2}, "w": 3}
        new = {"x": {"y": 9}, "v": 5}
        delta = compute_delta(old, new)
        assert apply_delta(old, delta) == new

    nested = st.recursive(
        st.integers() | st.text(max_size=5),
        lambda children: st.dictionaries(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Ll",), max_codepoint=0x7F
                ),
                min_size=1,
                max_size=4,
            ),
            children,
            max_size=4,
        ),
        max_leaves=20,
    )

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(st.text(min_size=1, max_size=4), nested, max_size=5),
        st.dictionaries(st.text(min_size=1, max_size=4), nested, max_size=5),
    )
    def test_delta_apply_property(self, old, new):
        """apply(old, delta(old, new)) == new for any state pair."""
        delta = compute_delta(old, new)
        import copy

        assert apply_delta(copy.deepcopy(old), delta) == new

    def test_size_bytes_positive_for_nonempty(self):
        delta = compute_delta({}, {"a": 1})
        assert delta.size_bytes() > 0


class TestCheckpointStore:
    def test_delta_since_last_accumulates(self):
        store = CheckpointStore({"counter": 0})
        store.update({"counter": 5})
        delta = store.delta_since_last(counter=10)
        assert delta.changed == {("counter",): 5}
        assert delta.counter == 10
        # A second call with no change is empty.
        assert store.delta_since_last(counter=11).empty

    def test_apply_tracks_counter(self):
        primary = CheckpointStore({"v": 1})
        replica = CheckpointStore({"v": 1})
        primary.update({"v": 2})
        replica.apply(primary.delta_since_last(counter=7))
        assert replica.state == {"v": 2}
        assert replica.applied_counter == 7


# ---------------------------------------------------------------------------
# Packet logger
# ---------------------------------------------------------------------------
class TestPacketLogger:
    def test_counters_monotonic(self):
        logger = PacketLogger()
        counters = [
            logger.stamp(i, Direction.UPLINK, PacketKind.DATA)
            for i in range(10)
        ]
        assert counters == sorted(counters)
        assert len(set(counters)) == 10

    def test_four_queues(self):
        logger = PacketLogger()
        logger.stamp("a", Direction.UPLINK, PacketKind.CONTROL)
        logger.stamp("b", Direction.UPLINK, PacketKind.DATA)
        logger.stamp("c", Direction.DOWNLINK, PacketKind.CONTROL)
        logger.stamp("d", Direction.DOWNLINK, PacketKind.DATA)
        for direction in Direction:
            for kind in PacketKind:
                assert logger.queue_depth(direction, kind) == 1

    def test_data_flood_cannot_evict_control(self):
        """§3.5.1: separate queues protect control packets."""
        logger = PacketLogger(data_capacity=5, control_capacity=5)
        logger.stamp("ctl", Direction.DOWNLINK, PacketKind.CONTROL)
        for index in range(100):
            logger.stamp(index, Direction.DOWNLINK, PacketKind.DATA)
        assert logger.queue_depth(Direction.DOWNLINK, PacketKind.CONTROL) == 1
        assert logger.queue_depth(Direction.DOWNLINK, PacketKind.DATA) == 5
        assert logger.dropped == 95

    def test_release_through(self):
        logger = PacketLogger()
        for index in range(10):
            logger.stamp(index, Direction.UPLINK, PacketKind.DATA)
        removed = logger.release_through(5)
        assert removed == 5
        assert len(logger) == 5
        assert logger.acked_counter == 5

    def test_replay_order_merges_by_counter(self):
        logger = PacketLogger()
        # Interleave queues so a naive per-queue replay would misorder.
        logger.stamp("c1", Direction.UPLINK, PacketKind.CONTROL)   # 1
        logger.stamp("d1", Direction.DOWNLINK, PacketKind.DATA)    # 2
        logger.stamp("c2", Direction.DOWNLINK, PacketKind.CONTROL) # 3
        logger.stamp("d2", Direction.UPLINK, PacketKind.DATA)      # 4
        replay = logger.replay_order()
        assert [entry.counter for entry in replay] == [1, 2, 3, 4]
        assert [entry.payload for entry in replay] == ["c1", "d1", "c2", "d2"]

    def test_replay_after_counter(self):
        logger = PacketLogger()
        for index in range(6):
            logger.stamp(index, Direction.UPLINK, PacketKind.DATA)
        replay = logger.replay_order(after_counter=4)
        assert [entry.counter for entry in replay] == [5, 6]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(Direction)),
                st.sampled_from(list(PacketKind)),
            ),
            max_size=60,
        )
    )
    def test_replay_order_property(self, stamps):
        logger = PacketLogger()
        for direction, kind in stamps:
            logger.stamp(None, direction, kind)
        counters = [entry.counter for entry in logger.replay_order()]
        assert counters == sorted(counters)
        assert len(counters) == len(stamps)


# ---------------------------------------------------------------------------
# Failure detection
# ---------------------------------------------------------------------------
class TestProbeAgent:
    def test_detects_within_half_millisecond(self):
        env = Environment()
        agent = ProbeAgent(env)
        target = ProbeTarget("node-1")
        agent.watch(target)
        agent.start()
        env.run(until=10 * MS)
        target.fail()
        failed_at = env.now
        env.run(until=failed_at + 5 * MS)
        assert len(agent.detections) == 1
        _, when = agent.detections[0]
        assert when - failed_at <= 0.5 * MS

    def test_no_false_positives(self):
        env = Environment()
        agent = ProbeAgent(env)
        agent.watch(ProbeTarget("healthy"))
        agent.start()
        env.run(until=50 * MS)
        assert agent.detections == []

    def test_recovery_resets(self):
        env = Environment()
        agent = ProbeAgent(env)
        target = ProbeTarget("flappy")
        agent.watch(target)
        agent.start()
        env.run(until=1 * MS)
        target.fail()
        env.run(until=5 * MS)
        target.recover()
        env.run(until=10 * MS)
        target.fail()
        env.run(until=15 * MS)
        assert len(agent.detections) == 2

    def test_listener_called(self):
        env = Environment()
        agent = ProbeAgent(env)
        target = ProbeTarget("node")
        agent.watch(target)
        seen = []
        agent.listeners.append(lambda t, when: seen.append(t.name))
        agent.start()
        target.fail()
        env.run(until=5 * MS)
        assert seen == ["node"]

    def test_invalid_threshold(self):
        env = Environment()
        with pytest.raises(ValueError):
            ProbeAgent(env, miss_threshold=0)


# ---------------------------------------------------------------------------
# Replicas and the framework
# ---------------------------------------------------------------------------
class TestReplicas:
    def test_local_replica_activation_restores_state(self):
        amf = AMF()
        amf.complete_registration("imsi-1", gnb_id=2)
        replica = LocalReplica("amf", factory=AMF)
        replica.sync(amf.snapshot())
        instance = replica.activate()
        assert not replica.frozen
        assert instance.context("imsi-1").serving_gnb_id == 2

    def test_remote_replica_applies_deltas(self):
        remote = RemoteReplica()
        store = CheckpointStore()
        store.update({"sessions": {"1": {"teid": 5}}})
        counter = remote.receive_delta("smf", store.delta_since_last(3))
        assert counter == 3
        assert remote.state_of("smf") == {"sessions": {"1": {"teid": 5}}}

    def test_frozen_replica_consumed_no_cpu(self):
        replica = LocalReplica("amf", factory=AMF)
        for _ in range(100):
            replica.sync({"x": 1})
        assert replica.cpu_while_frozen == 0.0


class TestFramework:
    def _framework(self, sync_period=5 * MS):
        env = Environment()
        amf, smf = AMF(), SMF()
        framework = ResiliencyFramework(
            env, {"amf": amf, "smf": smf}, sync_period=sync_period
        )
        framework.start()
        return env, framework, amf, smf

    def test_periodic_sync_releases_log(self):
        env, framework, amf, smf = self._framework()

        def scenario():
            for index in range(10):
                amf.context(f"imsi-{index}").bump()
                framework.log_message(
                    index, Direction.UPLINK, PacketKind.CONTROL
                )
                yield from framework.commit_event()
                yield env.timeout(2 * MS)

        env.process(scenario())
        env.run(until=100 * MS)
        assert framework.remote.synced_counter > 0
        assert framework.logger.acked_counter > 0
        assert len(framework.logger) < 10

    def test_failover_timeline(self):
        env, framework, amf, smf = self._framework()
        report_holder = {}

        def scenario():
            amf.context("imsi-1").bump()
            framework.log_message("m", Direction.UPLINK, PacketKind.CONTROL)
            yield from framework.commit_event()
            yield env.timeout(20 * MS)
            framework.fail_primary()
            report = yield from framework.run_failover()
            report_holder["report"] = report

        env.process(scenario())
        env.run(until=0.5)
        report = report_holder["report"]
        costs = framework.costs
        assert report.detected_at - report.failed_at == pytest.approx(
            framework.probe.detection_time
        )
        expected_outage = (
            framework.probe.detection_time
            + costs.unfreeze
            + max(costs.reroute, costs.replay)
        )
        assert report.outage == pytest.approx(expected_outage)
        # Under 10 ms total — vastly below the ~290 ms 3GPP reattach.
        assert report.outage < 10 * MS

    def test_replay_covers_unacked_only(self):
        env, framework, amf, smf = self._framework(sync_period=1.0)
        report_holder = {}

        def scenario():
            # No sync will happen (period 1 s); everything replays.
            for index in range(7):
                framework.log_message(
                    index, Direction.DOWNLINK, PacketKind.DATA
                )
                yield from framework.commit_event()
            framework.fail_primary()
            report = yield from framework.run_failover()
            report_holder["report"] = report

        env.process(scenario())
        env.run(until=0.5)
        report = report_holder["report"]
        assert report.replayed_messages == 7
        assert report.recovered_data_packets == 7
        assert report.recovered_control_packets == 0

    def test_output_commit_syncs_every_nf(self):
        env, framework, amf, smf = self._framework()

        def scenario():
            yield from framework.commit_event()

        env.process(scenario())
        env.run(until=1 * MS)
        assert all(
            replica.syncs == 1
            for replica in framework.local_replicas.values()
        )
        assert framework.events_committed == 1
