"""Tests for QoS enforcement (QER) and usage reporting (URR)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Direction, FiveTuple, Packet
from repro.pfcp import decode_message
from repro.pfcp.builder import build_qos_rules, build_session_establishment
from repro.pfcp.qos_ies import (
    CreateQerIE,
    CreateUrrIE,
    GateStatusIE,
    MbrIE,
    UsageReportIE,
    UrrIdIE,
    VolumeMeasurementIE,
    VolumeThresholdIE,
    GATE_CLOSED,
)
from repro.sim import Environment
from repro.up import (
    QerEnforcer,
    SessionTable,
    TokenBucket,
    UPFControlPlane,
    UPFUserPlane,
    UsageCounter,
)

UE_IP = 0x0A3C0001


class TestTokenBucket:
    def test_admits_within_burst(self):
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=1000)
        assert bucket.admit(500, now=0.0)
        assert bucket.admit(500, now=0.0)
        assert not bucket.admit(1, now=0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=1000)  # 1000 B/s
        assert bucket.admit(1000, now=0.0)
        assert not bucket.admit(100, now=0.0)
        assert bucket.admit(100, now=0.2)  # 200 B refilled

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=500)
        bucket.admit(0, now=100.0)  # long idle
        assert bucket.tokens == pytest.approx(500)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=100, burst_bytes=0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=1e3, max_value=1e8),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=1500),
                st.floats(min_value=1e-5, max_value=0.01),
            ),
            min_size=10,
            max_size=200,
        ),
    )
    def test_long_run_rate_never_exceeded(self, rate_bps, arrivals):
        """Admitted volume <= burst + rate x elapsed (policer bound)."""
        bucket = TokenBucket(rate_bps=rate_bps)
        now = 0.0
        admitted = 0
        for size, gap in arrivals:
            now += gap
            if bucket.admit(size, now):
                admitted += size
        bound = bucket.burst_bytes + rate_bps / 8 * now
        assert admitted <= bound + 1e-6

    def test_first_admit_at_late_sim_time_caps_at_burst(self):
        """A bucket created at t=0 but first used deep into the
        simulation (``_last_refill == 0.0``, huge elapsed) must cap the
        refill at the bucket depth — the long idle gap is not credit."""
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=500)
        assert bucket.admit(400, now=1e9)  # ~125 MB "refilled" if uncapped
        assert bucket.tokens == pytest.approx(100)
        # A burst-sized draw right after must fail: only depth remains.
        assert not bucket.admit(500, now=1e9)

    def test_non_monotonic_now_never_goes_negative(self):
        """Time running backwards (clock skew between callers) must not
        refill and must never drive the token count negative."""
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=1000)
        assert bucket.admit(1000, now=1.0)
        assert bucket.tokens == pytest.approx(0.0)
        # Earlier timestamp: elapsed < 0, refill skipped, no admit.
        assert not bucket.admit(1, now=0.5)
        assert bucket.tokens >= 0.0
        assert bucket.tokens == pytest.approx(0.0)
        # _last_refill stays at the later stamp: moving forward again
        # refills from 1.0, not from the skewed 0.5.
        assert bucket.admit(100, now=1.1)  # 0.1 s x 1000 B/s = 100 B
        assert bucket.tokens == pytest.approx(0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2000),
                st.floats(
                    min_value=0.0,
                    max_value=1e7,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_tokens_always_within_bounds(self, draws):
        """Under arbitrary (even non-monotonic) timestamps the token
        count stays in ``[0, burst_bytes]``."""
        bucket = TokenBucket(rate_bps=1e6, burst_bytes=1500)
        for size, now in draws:
            bucket.admit(size, now)
            assert 0.0 <= bucket.tokens <= bucket.burst_bytes + 1e-9


class TestQerEnforcer:
    def _packet(self, direction=Direction.DOWNLINK, size=100):
        return Packet(size=size, direction=direction)

    def test_closed_gate_blocks(self):
        enforcer = QerEnforcer(qer_id=1, dl_gate_open=False)
        assert not enforcer.admit(self._packet(), now=0.0)
        assert enforcer.gated_packets == 1
        # Uplink gate independent.
        assert enforcer.admit(self._packet(Direction.UPLINK), now=0.0)

    def test_policing_counts(self):
        enforcer = QerEnforcer(
            qer_id=1, dl_bucket=TokenBucket(8_000, burst_bytes=150)
        )
        assert enforcer.admit(self._packet(size=100), now=0.0)
        assert not enforcer.admit(self._packet(size=100), now=0.0)
        assert enforcer.policed_packets == 1

    def test_no_bucket_means_unlimited(self):
        enforcer = QerEnforcer(qer_id=1)
        for _ in range(1000):
            assert enforcer.admit(self._packet(), now=0.0)


class TestUsageCounter:
    def test_accounting_per_direction(self):
        counter = UsageCounter(urr_id=1)
        counter.account(Packet(size=100, direction=Direction.UPLINK))
        counter.account(Packet(size=200, direction=Direction.DOWNLINK))
        assert counter.uplink_bytes == 100
        assert counter.downlink_bytes == 200
        assert counter.total_bytes == 300

    def test_threshold_triggers_each_crossing(self):
        counter = UsageCounter(urr_id=1, volume_threshold_bytes=250)
        reports = sum(
            counter.account(Packet(size=100, direction=Direction.DOWNLINK))
            for _ in range(10)
        )
        # 1000 bytes / 250 threshold -> reports at 300, 600, 900 = 3..4
        assert reports == counter.reports_raised
        assert 3 <= reports <= 4

    def test_no_threshold_never_reports(self):
        counter = UsageCounter(urr_id=1)
        for _ in range(100):
            assert not counter.account(Packet(size=1500))

    def test_one_packet_crossing_multiple_thresholds_reports_once(self):
        """A single packet whose volume spans several threshold
        multiples raises exactly one report; the high-water mark then
        resets to the current total, so the *next* crossing needs a
        full threshold of fresh volume."""
        counter = UsageCounter(urr_id=1, volume_threshold_bytes=100)
        assert counter.account(
            Packet(size=1000, direction=Direction.DOWNLINK)
        )
        assert counter.reports_raised == 1
        # 99 more bytes: still under the next threshold from 1000.
        assert not counter.account(
            Packet(size=99, direction=Direction.DOWNLINK)
        )
        assert counter.account(
            Packet(size=1, direction=Direction.DOWNLINK)
        )
        assert counter.reports_raised == 2

    def test_report_bookkeeping_is_internal(self):
        """``_reported_at_bytes`` is bookkeeping, not configuration: it
        must not leak into ``__init__``, ``repr``, or equality."""
        with pytest.raises(TypeError):
            UsageCounter(urr_id=1, _reported_at_bytes=5)
        reported = UsageCounter(urr_id=1, volume_threshold_bytes=100)
        silent = UsageCounter(urr_id=1, volume_threshold_bytes=100)
        assert reported.account(
            Packet(size=100, direction=Direction.DOWNLINK)
        )
        # Same public totals, different report timing -> still equal.
        silent.uplink_bytes = reported.uplink_bytes
        silent.downlink_bytes = reported.downlink_bytes
        silent.reports_raised = reported.reports_raised
        assert reported == silent
        assert reported._reported_at_bytes != silent._reported_at_bytes
        assert "_reported_at_bytes" not in repr(reported)


class TestQosIEs:
    def test_qos_rules_roundtrip(self):
        rules = build_qos_rules(
            qer_id=3, qfi=5, mbr_ul_kbps=1000, mbr_dl_kbps=2000,
            urr_id=7, volume_threshold_bytes=1 << 20,
        )
        message = build_session_establishment(
            seid=1, sequence=1, ue_ip=UE_IP, upf_address=1,
            ul_teid=0x100, gnb_address=2, dl_teid=0x500,
            qos_rules=rules, qer_id=3, urr_id=7,
        )
        decoded = decode_message(message.encode())
        qer = decoded.find(CreateQerIE)
        assert qer is not None
        mbr = qer.child(MbrIE)
        assert (mbr.ul_kbps, mbr.dl_kbps) == (1000, 2000)
        urr = decoded.find(CreateUrrIE)
        assert urr.child(VolumeThresholdIE).total_bytes == 1 << 20

    def test_gate_status_roundtrip(self):
        gate = GateStatusIE(ul_gate=GATE_CLOSED, dl_gate=0)
        from repro.pfcp import decode_ies

        (decoded,) = decode_ies(gate.encode())
        assert not decoded.ul_open
        assert decoded.dl_open


class TestUPFIntegration:
    def _upf_with_qos(self, mbr_dl_kbps=0, threshold=None):
        env = Environment()
        table = SessionTable()
        delivered, reports = [], []
        upf_u = UPFUserPlane(
            env, table, downlink_sink=lambda p, t, a: delivered.append(p)
        )
        upf_c = UPFControlPlane(
            table, upf_u=upf_u, send_report=reports.append
        )
        upf_u.usage_report_sink = upf_c.on_usage_threshold
        message = build_session_establishment(
            seid=1, sequence=1, ue_ip=UE_IP, upf_address=1,
            ul_teid=0x100, gnb_address=2, dl_teid=0x500,
            qos_rules=build_qos_rules(
                qer_id=1, mbr_dl_kbps=mbr_dl_kbps,
                urr_id=9 if threshold else None,
                volume_threshold_bytes=threshold,
            ),
            qer_id=1,
            urr_id=9 if threshold else None,
        )
        upf_c.handle(message)
        return env, upf_u, delivered, reports

    def _dl(self, size=1500):
        return Packet(
            size=size,
            direction=Direction.DOWNLINK,
            flow=FiveTuple(src_ip=1, dst_ip=UE_IP, src_port=80,
                           dst_port=4000),
        )

    def test_mbr_polices_burst(self):
        env, upf_u, delivered, _ = self._upf_with_qos(mbr_dl_kbps=1000)

        def burst():
            for _ in range(100):
                upf_u.process(self._dl())
                yield env.timeout(1e-4)

        env.process(burst())
        env.run()
        assert upf_u.stats.dropped_qos > 50
        assert len(delivered) < 50
        # Conforming volume stays near bucket + rate x time.
        conforming = sum(packet.size for packet in delivered)
        assert conforming <= 12_500 + 1000 * 125 * 0.011 + 1500

    def test_usage_report_carries_measurement(self):
        env, upf_u, delivered, reports = self._upf_with_qos(
            threshold=4000
        )
        for _ in range(10):
            upf_u.process(self._dl(size=1000))
        assert len(reports) >= 2
        report = reports[0]
        usage = report.find(UsageReportIE)
        assert usage.child(UrrIdIE).rule_id == 9
        assert usage.child(VolumeMeasurementIE).total_bytes >= 4000

    def test_no_qos_rules_no_enforcement(self):
        env = Environment()
        table = SessionTable()
        delivered = []
        upf_u = UPFUserPlane(
            env, table, downlink_sink=lambda p, t, a: delivered.append(p)
        )
        upf_c = UPFControlPlane(table, upf_u=upf_u)
        upf_c.handle(
            build_session_establishment(
                seid=1, sequence=1, ue_ip=UE_IP, upf_address=1,
                ul_teid=0x100, gnb_address=2, dl_teid=0x500,
            )
        )
        for _ in range(100):
            upf_u.process(self._dl())
        assert len(delivered) == 100
        assert upf_u.stats.dropped_qos == 0
