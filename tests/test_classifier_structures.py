"""Tests for the three classifier implementations individually."""

import pytest

from repro.classifier import (
    ClassBenchGenerator,
    LinearClassifier,
    PartitionSortClassifier,
    Rule,
    TupleSpaceClassifier,
    exact,
    prefix,
    PDI_FIELDS,
)

ALL_CLASSES = [LinearClassifier, TupleSpaceClassifier, PartitionSortClassifier]


@pytest.fixture(params=ALL_CLASSES, ids=lambda cls: cls.name)
def classifier(request):
    return request.param()


class TestCommonBehaviour:
    def test_empty_lookup_misses(self, classifier):
        assert classifier.lookup(Rule.key_from_fields()) is None
        assert len(classifier) == 0

    def test_single_rule_hit_and_miss(self, classifier):
        rule = Rule.from_fields(priority=5, rule_id=1, dst_ip=exact(42))
        classifier.insert(rule)
        assert classifier.lookup(Rule.key_from_fields(dst_ip=42)) is rule
        assert classifier.lookup(Rule.key_from_fields(dst_ip=43)) is None

    def test_highest_priority_wins(self, classifier):
        low = Rule.from_fields(priority=1, rule_id=1, dst_ip=exact(42))
        high = Rule.from_fields(
            priority=9, rule_id=2, dst_ip=exact(42), protocol=exact(17)
        )
        classifier.insert(low)
        classifier.insert(high)
        key = Rule.key_from_fields(dst_ip=42, protocol=17)
        assert classifier.lookup(key).rule_id == 2
        # A key not matching the specific rule falls to the general one.
        key2 = Rule.key_from_fields(dst_ip=42, protocol=6)
        assert classifier.lookup(key2).rule_id == 1

    def test_remove(self, classifier):
        rule = Rule.from_fields(priority=1, rule_id=7, dst_ip=exact(1))
        classifier.insert(rule)
        assert classifier.remove(rule)
        assert classifier.lookup(Rule.key_from_fields(dst_ip=1)) is None
        assert not classifier.remove(rule)
        assert len(classifier) == 0

    def test_update_replaces(self, classifier):
        old = Rule.from_fields(priority=1, rule_id=7, dst_ip=exact(1))
        new = Rule.from_fields(priority=1, rule_id=7, dst_ip=exact(2))
        classifier.insert(old)
        classifier.update(new)
        assert classifier.lookup(Rule.key_from_fields(dst_ip=1)) is None
        assert classifier.lookup(Rule.key_from_fields(dst_ip=2)) is new
        assert len(classifier) == 1

    def test_remove_by_id(self, classifier):
        generated = ClassBenchGenerator(seed=4).rules(30)
        classifier.extend(generated)
        victim = generated[17]
        assert classifier.remove_by_id(victim.rule_id)
        assert len(classifier) == 29
        assert all(
            rule.rule_id != victim.rule_id for rule in classifier.rules()
        )
        # A second removal of the same id — and an unknown id — both miss.
        assert not classifier.remove_by_id(victim.rule_id)
        assert not classifier.remove_by_id(10**9)
        assert len(classifier) == 29

    def test_remove_by_id_then_reinsert(self, classifier):
        rule = Rule.from_fields(priority=1, rule_id=3, dst_ip=exact(7))
        classifier.insert(rule)
        assert classifier.remove_by_id(3)
        classifier.insert(rule)
        assert classifier.lookup(Rule.key_from_fields(dst_ip=7)) is rule

    def test_rules_snapshot(self, classifier):
        generated = ClassBenchGenerator(seed=1).rules(20)
        classifier.extend(generated)
        snapshot = classifier.rules()
        assert len(snapshot) == 20
        assert {rule.rule_id for rule in snapshot} == {
            rule.rule_id for rule in generated
        }


class TestTSSSpecifics:
    def test_single_signature_single_subtable(self):
        tss = TupleSpaceClassifier()
        tss.extend(ClassBenchGenerator(seed=2, profile="best").rules(100))
        assert tss.num_subtables == 1

    def test_worst_case_many_subtables(self):
        tss = TupleSpaceClassifier()
        tss.extend(ClassBenchGenerator(seed=2, profile="worst").rules(100))
        assert tss.num_subtables == 100

    def test_non_prefix_range_rejected(self):
        tss = TupleSpaceClassifier()
        with pytest.raises(ValueError):
            tss.insert(Rule.from_fields(dst_port=(5, 9)))

    def test_subtable_removed_when_empty(self):
        tss = TupleSpaceClassifier()
        rule = Rule.from_fields(priority=1, rule_id=1, dst_ip=exact(5))
        tss.insert(rule)
        assert tss.num_subtables == 1
        tss.remove(rule)
        assert tss.num_subtables == 0


class TestPartitionSortSpecifics:
    def test_few_partitions_for_template_rules(self):
        ps = PartitionSortClassifier()
        ps.extend(ClassBenchGenerator(seed=3).rules(500))
        # The paper's point: PartitionSort needs far fewer partitions
        # than TSS needs sub-tables.
        assert ps.num_partitions <= 12

    def test_nested_intervals_split_partitions(self):
        """Nested (overlapping-unequal) ranges cannot share a sortable
        ruleset."""
        ps = PartitionSortClassifier()
        spec = PDI_FIELDS[0]
        outer = Rule.from_fields(
            priority=1, rule_id=1, src_ip=prefix(spec, 0x0A000000, 8)
        )
        inner = Rule.from_fields(
            priority=2, rule_id=2, src_ip=prefix(spec, 0x0A010000, 16)
        )
        ps.insert(outer)
        ps.insert(inner)
        assert ps.num_partitions == 2
        # Both still findable; the more specific, higher-priority wins.
        key = Rule.key_from_fields(src_ip=0x0A010203)
        assert ps.lookup(key).rule_id == 2

    def test_identical_ranges_share_slot(self):
        ps = PartitionSortClassifier()
        a = Rule.from_fields(priority=1, rule_id=1, dst_ip=exact(9))
        b = Rule.from_fields(priority=5, rule_id=2, dst_ip=exact(9))
        ps.insert(a)
        ps.insert(b)
        assert ps.num_partitions == 1
        assert ps.lookup(Rule.key_from_fields(dst_ip=9)).rule_id == 2
        ps.remove(b)
        assert ps.lookup(Rule.key_from_fields(dst_ip=9)).rule_id == 1

    def test_empty_partition_cleaned_up(self):
        ps = PartitionSortClassifier()
        rule = Rule.from_fields(priority=1, rule_id=1, dst_ip=exact(1))
        ps.insert(rule)
        ps.remove(rule)
        assert ps.num_partitions == 0


class TestLinearSpecifics:
    def test_first_match_semantics(self):
        """Descending priority order, first match returned — exactly
        TS 29.244 §5.2.1's prescription."""
        linear = LinearClassifier()
        rules = [
            Rule.from_fields(priority=p, rule_id=p, dst_ip=exact(1))
            for p in (3, 1, 2)
        ]
        linear.extend(rules)
        stored = linear.rules()
        assert [rule.priority for rule in stored] == [3, 2, 1]
        assert linear.lookup(Rule.key_from_fields(dst_ip=1)).priority == 3
