"""Fuzz tests: decoders must reject garbage cleanly, never crash.

A UPF parses PFCP from the network and GTP-U from the wire; feeding
them arbitrary bytes must produce a clean ValueError (or a valid
decode), never an unhandled IndexError/struct.error — the robustness a
DoS-conscious data plane needs (§3.4 discusses classifier DoS; the
parsers are the other attack surface).
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.net import GTPUHeader, IPv4Header, decapsulate
from repro.net.pcap import read_pcap
from repro.pfcp import decode_ies, decode_message
from repro.pfcp.messages import PFCPHeader
from repro.ran.nas_codec import NASCodecError, decode_nas
import io


class TestPFCPFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=128))
    def test_decode_message_never_crashes(self, data):
        try:
            decode_message(data)
        except ValueError:
            pass

    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=128))
    def test_decode_ies_never_crashes(self, data):
        try:
            decode_ies(data)
        except ValueError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=8, max_size=64))
    def test_header_unpack_never_crashes(self, data):
        try:
            PFCPHeader.unpack(data)
        except ValueError:
            pass

    def test_valid_prefix_with_garbage_tail(self):
        """A valid header followed by garbage IEs must not crash."""
        from repro.pfcp import SessionModificationRequest

        valid = SessionModificationRequest(seid=1, sequence=1).encode()
        try:
            decode_message(valid + b"\xff\xff\xff")
        except ValueError:
            pass


class TestGTPFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=128))
    def test_gtp_header_never_crashes(self, data):
        try:
            GTPUHeader.unpack(data)
        except ValueError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=256))
    def test_decapsulate_never_crashes(self, data):
        try:
            decapsulate(data)
        except ValueError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=64))
    def test_ipv4_unpack_never_crashes(self, data):
        try:
            IPv4Header.unpack(data)
        except ValueError:
            pass


class TestOtherDecoders:
    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=128))
    def test_nas_never_crashes(self, data):
        try:
            decode_nas(data)
        except NASCodecError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=256))
    def test_pcap_reader_never_crashes(self, data):
        try:
            read_pcap(io.BytesIO(data))
        except ValueError:
            pass
