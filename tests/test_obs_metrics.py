"""Unit tests for the repro.obs metric primitives and registry."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.export import metrics_to_csv, metrics_to_json


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = Counter("requests")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset(self):
        counter = Counter("requests")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0

    def test_to_dict(self):
        counter = Counter("requests")
        counter.inc(2)
        assert counter.to_dict() == {"kind": "counter", "value": 2}


class TestGauge:
    def test_set_add_and_both_directions(self):
        gauge = Gauge("occupancy")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_set_max_keeps_high_watermark(self):
        gauge = Gauge("watermark")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5
        gauge.set_max(9)
        assert gauge.value == 9

    def test_callback_view(self):
        backing = [1, 2, 3]
        gauge = Gauge("length")
        gauge.set_function(lambda: len(backing))
        assert gauge.value == 3
        backing.append(4)
        assert gauge.value == 4

    def test_set_clears_callback(self):
        gauge = Gauge("g")
        gauge.set_function(lambda: 99)
        gauge.set(1)
        assert gauge.value == 1


class TestHistogram:
    def test_empty_summary_is_nan(self):
        histogram = Histogram("latency")
        assert histogram.count == 0
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.min)
        assert math.isnan(histogram.max)
        assert math.isnan(histogram.quantile(0.5))
        assert math.isnan(histogram.p50())
        assert math.isnan(histogram.p99())

    def test_count_sum_minmax(self):
        histogram = Histogram("latency")
        for value in (1e-6, 5e-6, 1e-3):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(1e-6 + 5e-6 + 1e-3)
        assert histogram.min == pytest.approx(1e-6)
        assert histogram.max == pytest.approx(1e-3)

    def test_quantile_extremes_are_exact(self):
        histogram = Histogram("latency")
        for value in (3e-6, 40e-6, 700e-6):
            histogram.observe(value)
        assert histogram.quantile(0.0) == pytest.approx(3e-6)
        assert histogram.quantile(1.0) == pytest.approx(700e-6)

    def test_quantile_within_bucket_resolution(self):
        histogram = Histogram("latency")
        for _ in range(100):
            histogram.observe(3e-4)  # lands in the (2e-4, 5e-4] bucket
        # All mass in one bucket; min==max pins the estimate exactly.
        assert histogram.p50() == pytest.approx(3e-4)
        assert histogram.p99() == pytest.approx(3e-4)

    def test_quantile_fraction_out_of_range(self):
        histogram = Histogram("latency")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_overflow_bucket(self):
        histogram = Histogram("latency", buckets=(1.0,))
        histogram.observe(100.0)
        bounds = histogram.buckets()
        assert bounds[-1][0] == math.inf
        assert bounds[-1][1] == 1

    def test_default_buckets_sorted_and_span_expected_range(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(10.0)

    def test_reset(self):
        histogram = Histogram("latency")
        histogram.observe(1e-3)
        histogram.reset()
        assert histogram.count == 0
        assert math.isnan(histogram.p50())

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("latency", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("x")
        b = registry.counter("x")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_register_adopts_external_metric(self):
        registry = MetricsRegistry()
        counter = Counter("ring.enqueued")
        assert registry.register(counter) is counter
        assert registry.get("ring.enqueued") is counter
        # Re-registering the same object is idempotent...
        registry.register(counter)
        # ...but a different object under the same name is a clash.
        with pytest.raises(ValueError):
            registry.register(Counter("ring.enqueued"))

    def test_collect_and_container_protocol(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(2)
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "missing" not in registry
        assert len(registry) == 2
        snapshot = registry.collect()
        assert snapshot["a"] == {"kind": "gauge", "value": 2}
        assert snapshot["b"] == {"kind": "counter", "value": 1}
        assert [metric.name for metric in registry] == ["a", "b"]


class TestMetricExports:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("delivered").inc(7)
        registry.histogram("latency").observe(2e-4)
        return registry

    def test_json_round_trips(self):
        import json

        doc = json.loads(metrics_to_json(self._registry()))
        assert doc["delivered"]["value"] == 7
        assert doc["latency"]["count"] == 1

    def test_csv_long_form(self):
        rows = metrics_to_csv(self._registry()).strip().splitlines()
        assert rows[0] == "metric,kind,field,value"
        assert "delivered,counter,value,7" in rows
        assert any(row.startswith("latency,histogram,count,1") for row in rows)
