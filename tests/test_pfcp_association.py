"""Tests for PFCP association setup and heartbeats."""

import pytest

from repro.pfcp import (
    AssociationManager,
    AssociationState,
    AssociationSetupRequest,
    HeartbeatRequest,
    HeartbeatResponse,
)
from repro.pfcp.ies import CauseIE, NodeIdIE
from repro.sim import MS, Environment


def wire(env, cp_address=1, up_address=2, up_reachable=None):
    """A CP and UP manager joined by a tiny request/response shim."""
    up = AssociationManager(env, node_address=up_address)
    reachable = up_reachable if up_reachable is not None else {"up": True}

    def transport(peer, message):
        done = env.event()

        def deliver():
            yield env.timeout(0.5 * MS)
            if not reachable["up"]:
                done.succeed(None)
                return
            if isinstance(message, AssociationSetupRequest):
                response = up.handle_setup_request(message)
            elif isinstance(message, HeartbeatRequest):
                response = up.handle_heartbeat(message)
            else:
                response = None
            yield env.timeout(0.5 * MS)
            done.succeed(response)

        env.process(deliver())
        return done

    cp = AssociationManager(env, node_address=cp_address, send=transport)
    return cp, up, reachable


class TestSetup:
    def test_establishment(self):
        env = Environment()
        cp, up, _ = wire(env)
        outcome = {}

        def scenario():
            association = yield from cp.establish(peer_address=2)
            outcome["association"] = association

        env.process(scenario())
        env.run()
        association = outcome["association"]
        assert association.state is AssociationState.ESTABLISHED
        assert cp.is_established(2)
        # The UP side learned the CP's node id too.
        assert 1 in up.associations

    def test_unreachable_peer(self):
        env = Environment()
        cp, up, reachable = wire(env)
        reachable["up"] = False
        outcome = {}

        def scenario():
            association = yield from cp.establish(peer_address=2)
            outcome["association"] = association

        env.process(scenario())
        env.run()
        assert outcome["association"].state is AssociationState.DOWN
        assert not cp.is_established(2)

    def test_setup_without_node_id_rejected(self):
        env = Environment()
        up = AssociationManager(env, node_address=2)
        response = up.handle_setup_request(
            AssociationSetupRequest(sequence=1)
        )
        assert not response.find(CauseIE).accepted


class TestHeartbeats:
    def test_heartbeats_flow(self):
        env = Environment()
        cp, up, _ = wire(env)

        def scenario():
            yield from cp.establish(peer_address=2)
            cp.start_heartbeats(2)

        env.process(scenario())
        env.run(until=1.0)
        association = cp.associations[2]
        assert association.heartbeats_sent >= 8
        assert association.heartbeats_received == association.heartbeats_sent
        assert association.state is AssociationState.ESTABLISHED

    def test_missed_heartbeats_mark_down(self):
        env = Environment()
        cp, up, reachable = wire(env)
        down_events = []
        cp.peer_down_listeners.append(
            lambda association: down_events.append(env.now)
        )

        def scenario():
            yield from cp.establish(peer_address=2)
            cp.start_heartbeats(2)
            yield env.timeout(300 * MS)
            reachable["up"] = False

        env.process(scenario())
        env.run(until=2.0)
        association = cp.associations[2]
        assert association.state is AssociationState.DOWN
        assert len(down_events) == 1
        # Detection within miss_threshold heartbeat intervals.
        assert down_events[0] <= 0.3 + 4 * cp.heartbeat_interval

    def test_heartbeat_response_echoes_sequence(self):
        env = Environment()
        up = AssociationManager(env, node_address=2)
        response = up.handle_heartbeat(HeartbeatRequest(sequence=42))
        assert isinstance(response, HeartbeatResponse)
        assert response.sequence == 42


class TestRestartDetection:
    def test_newer_recovery_timestamp_flags_restart(self):
        env = Environment()
        cp, up, _ = wire(env)
        restarts = []
        cp.peer_restart_listeners.append(
            lambda association: restarts.append(association.peer_address)
        )

        def scenario():
            yield from cp.establish(peer_address=2)

        env.process(scenario())
        env.run()
        assert not cp.observe_recovery_timestamp(2, timestamp=5)
        assert not cp.observe_recovery_timestamp(2, timestamp=5)
        assert cp.observe_recovery_timestamp(2, timestamp=9)
        assert restarts == [2]
        assert cp.associations[2].state is AssociationState.DOWN

    def test_unknown_peer_ignored(self):
        env = Environment()
        cp, _, _ = wire(env)
        assert not cp.observe_recovery_timestamp(99, timestamp=1)

    def test_invalid_threshold(self):
        env = Environment()
        with pytest.raises(ValueError):
            AssociationManager(env, node_address=1, miss_threshold=0)
