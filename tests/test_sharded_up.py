"""Sharded multi-UPF scale-out: router, dispatch, failover, PFCP.

The invariant that matters: **a sharded user plane is observationally
identical to the single UPF-U** — same per-packet outcomes, same
aggregate ForwardingStats, same URR accounting — under any
interleaving of packets and rule mutations, because sharding only
partitions the key space.  The property test replays randomized
interleavings against three stacks (sharded/cache-on, plain/cache-on,
plain/cache-off); the unit tests pin down the steering algebra, the
consistent-hash remap, and the failure/rebalance path individually.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import races
from repro.classifier import LinearClassifier, Rule, exact
from repro.deploy.lb import UEAwareLoadBalancer, UnitHandle
from repro.deploy.rss import DEFAULT_RSS_KEY, toeplitz_hash32
from repro.deploy.sharded import (
    ShardRouter,
    ShardedSessionTable,
    ShardedUPFControlPlane,
    ShardedUserPlane,
)
from repro.net import Direction, FiveTuple, Packet
from repro.obs.metrics import MetricsRegistry
from repro.pfcp import ies as pfcp_ies
from repro.pfcp.builder import (
    build_buffering_update,
    build_session_establishment,
)
from repro.pfcp.messages import SessionDeletionRequest
from repro.sim import Environment
from repro.up import (
    FAR,
    FARAction,
    PDR,
    SessionTable,
    UPFSession,
    UPFUserPlane,
)

GNB = 0xC0A80201
DN_IP = 0x08080808
UE_BASE = 0x0A3C0000

#: Module-level router used only to precompute steered TEIDs, so the
#: sharded and unsharded harnesses drive identical key material.
_STEER = ShardRouter(4)


def steered_teid(seid):
    return _STEER.steer_teid(UE_BASE + seid, 0x100 + seid)


# ----------------------------------------------------------------------
# Shared builders (steered-TEID variants of the flow-cache fixtures)
# ----------------------------------------------------------------------
def make_session(seid, classifier_class=LinearClassifier, qer=False,
                 urr=False, ul_teid=None):
    """UL+DL PDRs and forward FARs, with a steerable UL TEID."""
    from repro.up import QerEnforcer, TokenBucket, UsageCounter

    ue_ip = UE_BASE + seid
    if ul_teid is None:
        ul_teid = steered_teid(seid)
    session = UPFSession(
        seid=seid,
        ue_ip=ue_ip,
        ul_teid=ul_teid,
        classifier_class=classifier_class,
    )
    session.install_pdr(
        PDR(
            pdr_id=1,
            precedence=10,
            match=Rule.from_fields(
                priority=100,
                rule_id=1,
                far_id=1,
                teid=exact(ul_teid),
                source_iface=exact(pfcp_ies.ACCESS),
            ),
            far_id=1,
            qer_id=1 if qer else None,
            urr_id=1 if urr else None,
            outer_header_removal=True,
            source_interface=pfcp_ies.ACCESS,
        )
    )
    session.install_pdr(
        PDR(
            pdr_id=2,
            precedence=10,
            match=Rule.from_fields(
                priority=100,
                rule_id=2,
                far_id=2,
                dst_ip=exact(ue_ip),
                source_iface=exact(pfcp_ies.CORE),
            ),
            far_id=2,
            qer_id=1 if qer else None,
            urr_id=1 if urr else None,
            source_interface=pfcp_ies.CORE,
        )
    )
    session.install_far(
        FAR(far_id=1, action=FARAction(destination_interface=pfcp_ies.CORE))
    )
    session.install_far(
        FAR(
            far_id=2,
            action=FARAction(
                destination_interface=pfcp_ies.ACCESS,
                outer_teid=0x500 + seid,
                outer_address=GNB,
            ),
        )
    )
    if qer:
        session.install_qer_enforcer(
            QerEnforcer(
                qer_id=1,
                ul_bucket=TokenBucket(8000.0, burst_bytes=300),
                dl_bucket=TokenBucket(8000.0, burst_bytes=300),
            )
        )
    if urr:
        session.install_usage_counter(
            UsageCounter(urr_id=1, volume_threshold_bytes=256)
        )
    return session


def ul_packet(seid, src_port=4000):
    return Packet(
        direction=Direction.UPLINK,
        teid=steered_teid(seid),
        flow=FiveTuple(
            src_ip=UE_BASE + seid,
            dst_ip=DN_IP,
            src_port=src_port,
            dst_port=80,
        ),
        size=100,
    )


def dl_packet(seid, src_port=80):
    return Packet(
        direction=Direction.DOWNLINK,
        flow=FiveTuple(
            src_ip=DN_IP,
            dst_ip=UE_BASE + seid,
            src_port=src_port,
            dst_port=4000,
        ),
        size=100,
    )


def build_sharded(num_shards=4, **kwargs):
    return ShardedUserPlane(Environment(), num_shards, **kwargs)


# ----------------------------------------------------------------------
# TEID steering: the GF(2) algebra
# ----------------------------------------------------------------------
class TestTeidSteering:
    def test_steered_teid_colocates_with_ue_ip(self):
        router = ShardRouter(4)
        for seid in range(200):
            ue_ip = UE_BASE + seid
            teid = router.steer_teid(ue_ip, 0x1000 + seid)
            assert router.bucket_of(teid) == router.bucket_of(ue_ip)
            assert router.shard_for_teid(teid) == router.shard_for_ue_ip(
                ue_ip
            )

    def test_corrections_confined_to_steering_bits(self):
        """Low bits carry the counter: steering must not touch them."""
        router = ShardRouter(4)
        steering = router._steering
        low_mask = (1 << (32 - steering.steer_bits)) - 1
        assert steering.steer_bits <= steering.MAX_STEER_BITS
        assert all(fix & low_mask == 0 for fix in steering.fix)

    def test_steering_preserves_counter_uniqueness(self):
        router = ShardRouter(8)
        ue_ip = UE_BASE + 7
        teids = {
            router.steer_teid(ue_ip, 0x1000 + i) for i in range(2000)
        }
        assert len(teids) == 2000

    def test_colocation_survives_remap(self):
        """§4 + consistent hashing: UL/DL share a *bucket*, so any
        bucket->shard remap moves them together."""
        router = ShardRouter(4)
        pairs = [
            (UE_BASE + i, router.steer_teid(UE_BASE + i, 0x1000 + i))
            for i in range(50)
        ]
        router.remove_shard(2)
        router.add_shard(4)
        for ue_ip, teid in pairs:
            assert router.shard_for_teid(teid) == router.shard_for_ue_ip(
                ue_ip
            )


# ----------------------------------------------------------------------
# ShardRouter: consistent-hash-programmed indirection
# ----------------------------------------------------------------------
class TestShardRouter:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, table_size=100)

    def test_table_covers_all_members(self):
        router = ShardRouter(4)
        assert set(router.table) == {0, 1, 2, 3}

    def test_remove_last_shard_raises(self):
        router = ShardRouter(1)
        with pytest.raises(ValueError):
            router.remove_shard(0)

    def test_idempotent_membership_changes(self):
        router = ShardRouter(2)
        assert router.add_shard(0) == []       # already a member
        assert router.remove_shard(9) == []    # never a member

    def test_removal_moves_only_the_victims_buckets(self):
        router = ShardRouter(4)
        owned = [b for b, shard in enumerate(router.table) if shard == 2]
        moved = router.remove_shard(2)
        assert moved == owned
        assert 2 not in router.table

    def test_readmission_restores_the_same_table(self):
        router = ShardRouter(4)
        before = list(router.table)
        removed = router.remove_shard(2)
        restored = router.add_shard(2)
        assert router.table == before
        assert restored == removed  # the same buckets came back

    def test_dispatch_hashes_teid_ul_and_ue_ip_dl(self):
        router = ShardRouter(4)
        teid = router.steer_teid(UE_BASE + 1, 0x2000)
        ul = Packet(
            direction=Direction.UPLINK,
            teid=teid,
            flow=FiveTuple(src_ip=UE_BASE + 1, dst_ip=DN_IP),
        )
        dl = Packet(
            direction=Direction.DOWNLINK,
            flow=FiveTuple(src_ip=DN_IP, dst_ip=UE_BASE + 1),
        )
        assert router.shard_for_packet(ul) == router.shard_for_teid(teid)
        assert router.shard_for_packet(dl) == router.shard_for_ue_ip(
            UE_BASE + 1
        )
        # Steering makes the two agree for one session's traffic.
        assert router.shard_for_packet(ul) == router.shard_for_packet(dl)

    def test_teidless_uplink_still_dispatches(self):
        router = ShardRouter(4)
        packet = Packet(
            direction=Direction.UPLINK,
            teid=None,
            flow=FiveTuple(src_ip=1, dst_ip=2),
        )
        assert router.shard_for_packet(packet) == router.table[
            router.bucket_of(0)
        ]

    def test_bucket_of_is_masked_toeplitz(self):
        router = ShardRouter(2, table_size=64)
        value = 0xDEADBEEF
        assert router.bucket_of(value) == (
            toeplitz_hash32(value, DEFAULT_RSS_KEY) & 63
        )


# ----------------------------------------------------------------------
# ShardedSessionTable: the UPF-C's shard-aware view
# ----------------------------------------------------------------------
class TestShardedSessionTable:
    def _view(self, num_shards=4, lb=None):
        router = ShardRouter(num_shards)
        tables = [SessionTable() for _ in range(num_shards)]
        return router, tables, ShardedSessionTable(router, tables, lb=lb)

    def test_add_places_on_the_ue_ip_shard(self):
        router, tables, view = self._view()
        session = make_session(1)
        view.add(session)
        shard = router.shard_for_ue_ip(session.ue_ip)
        assert view.shard_of(1) == shard
        assert tables[shard].by_seid(1) is session
        assert len(view) == 1

    def test_unsteered_teid_rejected(self):
        router, _, view = self._view()
        ue_ip = UE_BASE + 1
        teid = 0x100
        while router.shard_for_teid(teid) == router.shard_for_ue_ip(ue_ip):
            teid += 1
        with pytest.raises(ValueError, match="steer_teid"):
            view.add(make_session(1, ul_teid=teid))

    def test_lookups_route_by_key(self):
        _, _, view = self._view()
        for seid in (1, 2, 3):
            view.add(make_session(seid))
        for seid in (1, 2, 3):
            session = view.by_seid(seid)
            assert session is not None
            assert view.by_teid(session.ul_teid) is session
            assert view.by_ue_ip(session.ue_ip) is session
        assert {s.seid for s in view.sessions()} == {1, 2, 3}

    def test_remove_unknown_is_none(self):
        _, _, view = self._view()
        assert view.remove(99) is None
        assert view.by_seid(99) is None

    def test_rehome_moves_and_adopts_target_epoch(self):
        router, tables, view = self._view()
        session = make_session(1)
        view.add(session)
        source = view.shard_of(1)
        target = (source + 1) % 4
        assert view.rehome(1, target)
        assert view.shard_of(1) == target
        assert tables[source].by_seid(1) is None
        assert tables[target].by_seid(1) is session
        assert session.epoch is tables[target].epoch
        # No-op moves report False.
        assert not view.rehome(1, target)
        assert not view.rehome(99, 0)

    def test_removal_listeners_fire_on_every_shard(self):
        _, _, view = self._view()
        removed = []
        view.add_removal_listener(lambda session: removed.append(session.seid))
        for seid in (1, 2, 3, 4):
            view.add(make_session(seid))
        for seid in (1, 2, 3, 4):
            view.remove(seid)
        assert sorted(removed) == [1, 2, 3, 4]

    def test_lb_counters_track_placement(self):
        lb = UEAwareLoadBalancer()
        for unit_id in range(4):
            lb.add_unit(UnitHandle(unit_id=unit_id, capacity_sessions=100))
        router, tables, view = self._view(lb=lb)
        for seid in range(1, 9):
            view.add(make_session(seid))
        assert lb.distribution() == {
            shard: len(table) for shard, table in enumerate(tables)
        }
        view.remove(1)
        assert sum(lb.distribution().values()) == 7

    def test_full_unit_rejects_placement(self):
        lb = UEAwareLoadBalancer()
        for unit_id in range(4):
            lb.add_unit(UnitHandle(unit_id=unit_id, capacity_sessions=0))
        _, _, view = self._view(lb=lb)
        with pytest.raises(ValueError, match="rejected"):
            view.add(make_session(1))
        assert lb.rejected == 1
        assert len(view) == 0

    def test_failed_add_releases_the_shard_pin(self):
        # Regression (found by the W007 typestate check): a duplicate
        # UE-IP/TEID rejection in the shard table used to leak the pin
        # taken just before — the unit's session counter stayed
        # incremented for a session that was never installed.
        lb = UEAwareLoadBalancer()
        for unit_id in range(4):
            lb.add_unit(UnitHandle(unit_id=unit_id, capacity_sessions=100))
        _, _, view = self._view(lb=lb)
        view.add(make_session(1))
        before = lb.distribution()
        dup = UPFSession(
            seid=2, ue_ip=UE_BASE + 1, ul_teid=steered_teid(1),
        )
        with pytest.raises(ValueError):
            view.add(dup)
        assert lb.distribution() == before
        assert "seid-2" not in lb.affinity
        assert view.shard_of(2) is None

    def test_failed_rehome_restores_the_source_shard(self):
        # Regression (found by the W007 typestate check): when the
        # target shard rejected the moved session (key collision with a
        # resident), the session had already been removed from the
        # source — it vanished along with its buffered packets.
        router, tables, view = self._view()
        session = make_session(1)
        view.add(session)
        source = view.shard_of(1)
        target = (source + 1) % 4
        squatter = UPFSession(
            seid=99, ue_ip=session.ue_ip, ul_teid=0x9990,
        )
        tables[target].add(squatter)
        with pytest.raises(ValueError):
            view.rehome(1, target)
        assert view.shard_of(1) == source
        assert tables[source].by_seid(1) is session
        assert view.by_seid(1) is session
        assert tables[target].by_seid(1) is None


# ----------------------------------------------------------------------
# ShardedUserPlane: dispatch, aggregation, failure/rebalance
# ----------------------------------------------------------------------
class TestShardedUserPlane:
    def test_dispatch_reaches_the_owning_shard(self):
        up = build_sharded()
        up.sessions.add(make_session(1))
        shard = up.sessions.shard_of(1)
        assert up.process(ul_packet(1)) == "forwarded-ul"
        assert up.process(dl_packet(1)) == "forwarded-dl"
        assert up.dispatched[shard] == 2
        assert sum(up.dispatched) == 2
        assert up.shards[shard].upf_u.stats.forwarded_ul == 1

    def test_aggregate_stats_sum_the_shards(self):
        up = build_sharded()
        for seid in range(1, 9):
            up.sessions.add(make_session(seid))
        for seid in range(1, 9):
            up.process(ul_packet(seid))
            up.process(dl_packet(seid))
        up.process(dl_packet(99))  # no session anywhere
        assert up.stats.forwarded_ul == 8
        assert up.stats.forwarded_dl == 8
        assert up.stats.dropped_no_session == 1
        assert up.stats.forwarded == sum(
            shard.upf_u.stats.forwarded for shard in up.shards
        )

    def test_flow_cache_hit_rate_aggregates(self):
        up = build_sharded()
        up.sessions.add(make_session(1))
        assert up.process(ul_packet(1)) == "forwarded-ul"  # fill
        assert up.process(ul_packet(1)) == "forwarded-ul"  # hit
        assert up.flow_cache_hit_rate == 0.5

    def test_flush_session_routes_by_shard(self):
        up = build_sharded()
        session = make_session(1)
        up.sessions.add(session)
        session.update_far(
            FAR(far_id=2, action=FARAction(forward=False, buffer=True))
        )
        assert up.process(dl_packet(1)) == "buffered"
        session.update_far(FAR(far_id=2, action=FARAction(forward=True)))
        assert up.flush_session(session) == 1
        assert up.flush_session(make_session(42)) == 0  # never added

    def test_load_skew_counts_healthy_shards(self):
        up = build_sharded(2)
        seid = 1
        placed = 0
        while placed < 4:  # four sessions on shard 0, none on shard 1
            session = make_session(seid)
            if up.router.shard_for_ue_ip(session.ue_ip) == 0:
                up.sessions.add(session)
                placed += 1
            seid += 1
        assert up.load_skew() == pytest.approx(2.0)

    def test_mark_failed_rehomes_every_session(self):
        up = build_sharded()
        for seid in range(1, 41):
            up.sessions.add(make_session(seid))
        victim = up.sessions.shard_of(1)
        stranded = len(up.shards[victim].table)
        moved = up.mark_failed(victim)
        assert moved == stranded
        assert up.failovers == 1
        assert len(up.shards[victim].table) == 0
        assert victim not in up.router.table
        # Every session is still reachable and carries traffic.
        for seid in range(1, 41):
            assert up.sessions.by_seid(seid) is not None
            assert up.process(dl_packet(seid)) == "forwarded-dl"
            assert up.process(ul_packet(seid)) == "forwarded-ul"

    def test_mark_failed_purges_the_victims_flow_cache(self):
        up = build_sharded()
        for seid in range(1, 21):
            up.sessions.add(make_session(seid))
            up.process(ul_packet(seid))
        victim = up.sessions.shard_of(1)
        assert len(up.shards[victim].upf_u.flow_cache) > 0
        up.mark_failed(victim)
        assert len(up.shards[victim].upf_u.flow_cache) == 0

    def test_mark_recovered_pulls_sessions_back(self):
        up = build_sharded()
        for seid in range(1, 41):
            up.sessions.add(make_session(seid))
        victim = up.sessions.shard_of(1)
        up.mark_failed(victim)
        moved_back = up.mark_recovered(victim)
        assert moved_back > 0
        assert len(up.shards[victim].table) == moved_back
        assert up.sessions.shard_of(1) == victim
        assert up.process(ul_packet(1)) == "forwarded-ul"

    def test_rebalance_is_race_clean(self):
        """Rebalance is membership writing — it must run as UPF-C."""
        env = Environment()
        with races.traced(env=env) as detector:
            up = ShardedUserPlane(env, 4)
            with detector.role("upf-c"):
                for seid in range(1, 21):
                    up.sessions.add(make_session(seid))
            victim = up.sessions.shard_of(1)
            up.mark_failed(victim)
            for seid in range(1, 21):
                up.process(dl_packet(seid))
        assert detector.violations == [], detector.report()

    def test_register_into_exports_per_shard_series(self):
        up = build_sharded(2)
        registry = MetricsRegistry()
        up.register_into(registry)
        for seid in range(1, 9):
            up.sessions.add(make_session(seid))
            up.process(ul_packet(seid))
            up.process(ul_packet(seid))
        per_shard_sessions = [
            registry.gauge(f"sessions{{shard={i}}}").value for i in (0, 1)
        ]
        assert sum(per_shard_sessions) == 8
        assert sum(
            registry.gauge(f"dispatched{{shard={i}}}").value for i in (0, 1)
        ) == 16
        assert registry.gauge("upf_u.forwarded").value == 16
        assert registry.gauge("upf_u.forwarded_ul").value == 16
        assert registry.gauge("upf_u.dropped").value == 0
        assert registry.gauge("shard.count").value == 2
        assert registry.gauge("shard.load_skew").value >= 1.0
        assert registry.gauge("flow_cache.hit_rate").value == 0.5
        hits = sum(
            registry.gauge(f"flow_cache_hits{{shard={i}}}").value
            for i in (0, 1)
        )
        assert hits == 8

    def test_observe_latency_feeds_the_shard_histogram(self):
        up = build_sharded(2)
        registry = MetricsRegistry()
        up.observe_latency(0, 1.0)  # before registration: dropped
        up.register_into(registry)
        for value in (1e-6, 2e-6, 3e-6):
            up.observe_latency(1, value)
        histogram = registry.histogram("upf_u.latency_s{shard=1}")
        assert histogram.count == 3
        assert histogram.p99() == pytest.approx(3e-6, rel=0.25)
        assert registry.histogram("upf_u.latency_s{shard=0}").count == 0


# ----------------------------------------------------------------------
# ShardedUPFControlPlane: the N4 endpoint
# ----------------------------------------------------------------------
class TestShardedControlPlane:
    def _cp(self, num_shards=4):
        up = build_sharded(num_shards)
        return up, ShardedUPFControlPlane(up)

    def _establish(self, cp, seid, sequence=1):
        ue_ip = UE_BASE + seid
        ul_teid = cp.allocate_teid(ue_ip=ue_ip)
        response = cp.handle(
            build_session_establishment(
                seid=seid,
                sequence=sequence,
                ue_ip=ue_ip,
                upf_address=cp.address,
                ul_teid=ul_teid,
                gnb_address=GNB,
                dl_teid=0x500 + seid,
            )
        )
        assert response.find(pfcp_ies.CauseIE).cause == (
            pfcp_ies.CAUSE_ACCEPTED
        )
        return ul_teid

    def test_establish_places_colocated_session(self):
        up, cp = self._cp()
        ul_teid = self._establish(cp, seid=1)
        session = up.sessions.by_seid(1)
        assert session is not None and session.ul_teid == ul_teid
        assert up.router.shard_for_teid(ul_teid) == (
            up.router.shard_for_ue_ip(session.ue_ip)
        )
        # The established session carries traffic through dispatch.
        packet = ul_packet(1)
        packet.teid = ul_teid
        assert up.process(packet) == "forwarded-ul"
        assert up.process(dl_packet(1)) == "forwarded-dl"

    def test_modification_choose_fteid_is_steered(self):
        """Handover prep (§3.3): the new F-TEID must stay on-shard."""
        up, cp = self._cp()
        self._establish(cp, seid=1)
        session = up.sessions.by_seid(1)
        response = cp.handle(
            build_buffering_update(
                seid=1,
                sequence=2,
                choose_new_teid=True,
                upf_address=cp.address,
            )
        )
        fteid = response.find(pfcp_ies.FTeidIE)
        assert fteid is not None and not fteid.choose
        assert up.router.shard_for_teid(fteid.teid) == (
            up.router.shard_for_ue_ip(session.ue_ip)
        )

    def test_deletion_releases_the_shard(self):
        up, cp = self._cp()
        self._establish(cp, seid=1)
        assert len(up.sessions) == 1
        assert sum(up.lb.distribution().values()) == 1
        cp.handle(SessionDeletionRequest(seid=1, sequence=3))
        assert len(up.sessions) == 0
        assert up.sessions.by_seid(1) is None
        assert sum(up.lb.distribution().values()) == 0

    def test_establishments_spread_over_shards(self):
        up, cp = self._cp()
        for seid in range(1, 33):
            self._establish(cp, seid=seid, sequence=seid)
        occupied = [shard for shard in up.shards if len(shard.table)]
        assert len(occupied) >= 2  # hash placement actually spreads
        assert len(up.sessions) == 32


# ----------------------------------------------------------------------
# Full system: FiveGCore(upf_shards=4), metrics, race cleanliness
# ----------------------------------------------------------------------
class TestFiveGCoreSharded:
    def _core(self, env, shards=4):
        from repro.cp import FiveGCore, SystemConfig

        config = SystemConfig.l25gc()
        config.upf_shards = shards
        config.flow_cache = True
        core = FiveGCore(env, config)
        for gnb in core.gnbs.values():
            gnb.radio_latency = 0.0
        return core

    def _attach(self, env, core, count=4):
        from repro.cp import ProcedureRunner

        runner = ProcedureRunner(core)
        ues = [
            core.add_ue(f"imsi-20893000007{index:04d}")
            for index in range(count)
        ]

        def lifecycle():
            for ue in ues:
                yield from runner.register_ue(ue, gnb_id=1)
                yield from runner.establish_session(ue)

        env.process(lifecycle())
        env.run()
        return runner, ues

    def test_sharded_core_delivers_end_to_end(self):
        env = Environment()
        core = self._core(env)
        _, ues = self._attach(env, core, count=4)
        for ue in ues:
            sm = core.smf.context_for(ue.supi, 1)
            for _ in range(5):
                core.inject_downlink(
                    Packet(
                        direction=Direction.DOWNLINK,
                        flow=FiveTuple(
                            src_ip=DN_IP, dst_ip=sm.ue_ip,
                            src_port=80, dst_port=4000,
                        ),
                        created_at=env.now,
                    )
                )
        env.run()
        assert all(len(ue.received) == 5 for ue in ues)
        assert core.upf_u.stats.forwarded_dl == 20
        # Every PFCP-established session is steered onto one shard.
        for session in core.sessions.sessions():
            assert core.upf_u.router.shard_for_teid(session.ul_teid) == (
                core.upf_u.router.shard_for_ue_ip(session.ue_ip)
            )

    def test_metrics_registry_exports_shard_series(self):
        env = Environment()
        core = self._core(env, shards=2)
        self._attach(env, core, count=4)
        registry = core.metrics_registry()
        assert registry.gauge("sessions.active").value == 4
        assert registry.gauge("shard.count").value == 2
        assert sum(
            registry.gauge(f"sessions{{shard={i}}}").value for i in (0, 1)
        ) == 4
        assert registry.gauge("shard.load_skew").value >= 1.0

    def test_sharded_attach_and_handover_race_clean(self):
        """The ISSUE's acceptance scenario: attach + handover on the
        sharded config under the PR 4 race detector."""
        from repro.cp import ProcedureRunner

        env = Environment()
        with races.traced(env=env) as detector:
            core = self._core(env)
            runner = ProcedureRunner(core)
            ue = core.add_ue("imsi-208930000080001")

            def scenario():
                yield from runner.register_ue(ue, gnb_id=1)
                result = yield from runner.establish_session(ue)
                for _ in range(5):
                    core.inject_downlink(
                        Packet(
                            direction=Direction.DOWNLINK,
                            flow=FiveTuple(
                                src_ip=DN_IP,
                                dst_ip=result.detail["ue_ip"],
                                src_port=80,
                                dst_port=4000,
                            ),
                            created_at=env.now,
                        )
                    )
                yield from runner.handover(ue, target_gnb_id=2)

            env.process(scenario())
            env.run()
        assert detector.violations == [], detector.report()
        assert len(ue.received) == 5


# ----------------------------------------------------------------------
# Property test: sharded == unsharded
# ----------------------------------------------------------------------
SEIDS = (1, 2, 3)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("ul"), st.sampled_from(SEIDS), st.integers(1, 3)),
        st.tuples(st.just("dl"), st.sampled_from(SEIDS), st.integers(1, 3)),
        st.tuples(st.just("add"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("del"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("buffer-far"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("forward-far"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("flush"), st.sampled_from(SEIDS), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


class _Stack:
    """One user plane (sharded or plain) driven by the op sequence."""

    def __init__(self, sharded, flow_cache):
        if sharded:
            self.upf = build_sharded(
                4, flow_cache=flow_cache, flow_cache_capacity=8
            )
            self.view = self.upf.sessions
        else:
            table = SessionTable()
            self.upf = UPFUserPlane(
                Environment(),
                table,
                flow_cache=flow_cache,
                flow_cache_capacity=8,
            )
            self.view = table
        self.outcomes = []
        self.usage = {}

    def step(self, op, seid, variant):
        session = self.view.by_seid(seid)
        if op == "ul":
            self.outcomes.append(
                self.upf.process(ul_packet(seid, src_port=4000 + variant))
            )
        elif op == "dl":
            self.outcomes.append(
                self.upf.process(dl_packet(seid, src_port=80 + variant))
            )
        elif op == "add":
            if session is None:
                self.view.add(make_session(seid, qer=True, urr=True))
        elif op == "del":
            removed = self.view.remove(seid)
            if removed is not None:
                # URR totals must match even for departed sessions.
                counter = removed.usage_counters[1]
                self.usage[seid] = (
                    self.usage.get(seid, (0, 0))[0] + counter.uplink_bytes,
                    self.usage.get(seid, (0, 0))[1] + counter.downlink_bytes,
                )
        elif op == "buffer-far" and session is not None:
            session.update_far(
                FAR(
                    far_id=2,
                    action=FARAction(
                        forward=False, buffer=True, notify_cp=True
                    ),
                )
            )
        elif op == "forward-far" and session is not None:
            session.update_far(FAR(far_id=2, action=FARAction(forward=True)))
        elif op == "flush" and session is not None:
            self.upf.flush_session(session)

    def usage_totals(self):
        totals = dict(self.usage)
        for session in self.view.sessions():
            counter = session.usage_counters[1]
            base = totals.get(session.seid, (0, 0))
            totals[session.seid] = (
                base[0] + counter.uplink_bytes,
                base[1] + counter.downlink_bytes,
            )
        return totals


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_sharded_equals_unsharded(ops):
    sharded = _Stack(sharded=True, flow_cache=True)
    cached = _Stack(sharded=False, flow_cache=True)
    plain = _Stack(sharded=False, flow_cache=False)
    for op, seid, variant in ops:
        for stack in (sharded, cached, plain):
            stack.step(op, seid, variant)
        # Partitioning the key space must not change a single
        # forwarding decision, ever.
        assert sharded.outcomes == cached.outcomes == plain.outcomes
    assert sharded.upf.stats == cached.upf.stats == plain.upf.stats
    assert sharded.usage_totals() == plain.usage_totals()


@settings(max_examples=20, deadline=None)
@given(_ops, st.sampled_from((0, 1, 2, 3)))
def test_sharded_survives_mid_sequence_failover(ops, victim):
    """Failing one shard mid-stream must preserve the equivalence for
    every op after the rebalance (sessions moved, caches purged)."""
    sharded = _Stack(sharded=True, flow_cache=True)
    plain = _Stack(sharded=False, flow_cache=False)
    half = len(ops) // 2
    for op, seid, variant in ops[:half]:
        sharded.step(op, seid, variant)
        plain.step(op, seid, variant)
    before = len(sharded.view)
    sharded.upf.mark_failed(victim)
    assert len(sharded.view) == before  # rebalance loses nothing
    for op, seid, variant in ops[half:]:
        sharded.step(op, seid, variant)
        plain.step(op, seid, variant)
        assert sharded.outcomes == plain.outcomes
    assert sharded.upf.stats == plain.upf.stats


# ----------------------------------------------------------------------
# The scalability experiment (smoke; the full sweep is BENCH_shard.json)
# ----------------------------------------------------------------------
class TestShardScaleExperiment:
    def test_sweep_produces_sane_rows(self):
        from repro.experiments.scalability import shard_scale_sweep

        rows = shard_scale_sweep(
            session_counts=(2_000,),
            shard_counts=(1, 2),
            resident_per_shard=32,
            packets=200,
            warmup=50,
            repeats=1,
        )
        assert [(r.sessions, r.shards) for r in rows] == [
            (2_000, 1), (2_000, 2),
        ]
        for row in rows:
            assert row.p50_us > 0 and row.p99_us >= row.p50_us
            assert row.modeled_mpps_per_shard > 0
            assert row.load_skew >= 1.0
            assert 0.0 <= row.flow_cache_hit_rate <= 1.0
            assert row.resident_sessions <= row.sessions
        single, double = rows
        assert double.modeled_mpps_total > single.modeled_mpps_total
