"""CLI tests for ``python -m repro.analysis.dataflow`` and the
``python -m repro.analysis all`` umbrella."""

import json
import os
import textwrap

import pytest

from repro.analysis.__main__ import main as umbrella_main
from repro.analysis.dataflow import cli

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DIRTY = {
    "pkg/__init__.py": "",
    "pkg/up.py": """
        def emit(chan, desc):
            chan.send(desc)
            desc.seq = 2
    """,
}

CLEAN = {
    "pkg/__init__.py": "",
    "pkg/up.py": """
        def emit(chan, desc):
            chan.send(desc)
    """,
}


@pytest.fixture
def write_tree(tmp_path, monkeypatch):
    def _write(tree):
        for relpath, source in sorted(tree.items()):
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        monkeypatch.chdir(tmp_path)
        return tmp_path
    return _write


class TestExitCodes:
    def test_clean_tree_exits_zero(self, write_tree, capsys):
        write_tree(CLEAN)
        assert cli.main(["pkg"]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, write_tree, capsys):
        write_tree(DIRTY)
        assert cli.main(["pkg"]) == 1
        out = capsys.readouterr().out
        assert "W005" in out
        assert "call chain:" in out

    def test_missing_path_exits_two(self, write_tree, capsys):
        write_tree(CLEAN)
        assert cli.main(["nonexistent"]) == 2

    def test_missing_baseline_exits_two(self, write_tree, capsys):
        write_tree(DIRTY)
        assert cli.main(["pkg", "--baseline", "missing.json"]) == 2


class TestSelection:
    def test_select_other_code_skips_finding(self, write_tree):
        write_tree(DIRTY)
        assert cli.main(["pkg", "--select", "W006"]) == 0

    def test_ignore_silences_finding(self, write_tree):
        write_tree(DIRTY)
        assert cli.main(["pkg", "--ignore", "W005"]) == 0


class TestFormats:
    def test_github_annotations(self, write_tree, capsys):
        write_tree(DIRTY)
        assert cli.main(["pkg", "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "W005" in out

    def test_json_payload(self, write_tree, capsys):
        write_tree(DIRTY)
        assert cli.main(["pkg", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["findings"][0]["code"] == "W005"
        assert data["findings"][0]["chain"]
        assert data["stats"]["functions"] >= 1


class TestBaseline:
    def test_baseline_suppresses_and_exits_zero(
        self, write_tree, capsys
    ):
        write_tree(DIRTY)
        assert cli.main(["pkg", "--write-baseline", "base.json"]) == 0
        capsys.readouterr()
        assert cli.main(["pkg", "--baseline", "base.json"]) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_line_shift_keeps_baseline_valid(
        self, tmp_path, write_tree, capsys
    ):
        write_tree(DIRTY)
        assert cli.main(["pkg", "--write-baseline", "base.json"]) == 0
        shifted = "# leading comment\n\n" + textwrap.dedent(
            DIRTY["pkg/up.py"]
        )
        (tmp_path / "pkg" / "up.py").write_text(shifted)
        capsys.readouterr()
        assert cli.main(["pkg", "--baseline", "base.json"]) == 0

    def test_fixed_finding_makes_baseline_stale(
        self, tmp_path, write_tree, capsys
    ):
        write_tree(DIRTY)
        assert cli.main(["pkg", "--write-baseline", "base.json"]) == 0
        (tmp_path / "pkg" / "up.py").write_text(
            textwrap.dedent(CLEAN["pkg/up.py"])
        )
        capsys.readouterr()
        assert cli.main(["pkg", "--baseline", "base.json"]) == 2
        err = capsys.readouterr().err
        assert "stale baseline entry" in err
        assert "regenerate with --write-baseline" in err

    def test_stale_gate_scoped_to_selected_codes(
        self, tmp_path, write_tree, capsys
    ):
        # A baselined W005 must not count as stale when only W006 runs.
        write_tree(DIRTY)
        assert cli.main(["pkg", "--write-baseline", "base.json"]) == 0
        capsys.readouterr()
        assert cli.main(
            ["pkg", "--select", "W006", "--baseline", "base.json"]
        ) == 0

    def test_default_baseline_picked_up_from_cwd(
        self, write_tree, capsys
    ):
        write_tree(DIRTY)
        assert cli.main(
            ["pkg", "--write-baseline", cli.DEFAULT_BASELINE_FILE]
        ) == 0
        capsys.readouterr()
        assert cli.main(["pkg"]) == 0


class TestRepoIntegration:
    def test_repo_tree_runs_clean_with_committed_baseline(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        code = cli.main([os.path.join("src", "repro"), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["findings"] == []


class TestUmbrella:
    def test_all_runs_three_stages_clean_on_repo(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        code = umbrella_main(["all", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert sorted(data["stages"]) == ["dataflow", "lint", "program"]
        assert data["exit_codes"] == {
            "lint": 0, "program": 0, "dataflow": 0,
        }

    def test_all_text_mode_prints_stage_headers(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        code = umbrella_main(["all"])
        out = capsys.readouterr().out
        assert code == 0
        for stage in ("lint", "program", "dataflow"):
            assert f"== {stage} ==" in out
