"""Tests for the simulated packet model."""

import pytest

from repro.net import Direction, FiveTuple, Packet, PacketKind
from repro.net.headers import PROTO_TCP, PROTO_UDP


class TestFiveTuple:
    def test_reversed(self):
        flow = FiveTuple(
            src_ip=1, dst_ip=2, src_port=10, dst_port=20, protocol=PROTO_TCP
        )
        back = flow.reversed()
        assert back.src_ip == 2 and back.dst_ip == 1
        assert back.src_port == 20 and back.dst_port == 10
        assert back.protocol == PROTO_TCP

    def test_hashable(self):
        assert len({FiveTuple(src_ip=1), FiveTuple(src_ip=1)}) == 1


class TestPacket:
    def test_unique_ids(self):
        assert Packet().packet_id != Packet().packet_id

    def test_copy_gets_fresh_id_and_meta(self):
        original = Packet(meta={"key": "value"})
        duplicate = original.copy()
        assert duplicate.packet_id != original.packet_id
        duplicate.meta["key"] = "changed"
        assert original.meta["key"] == "value"

    def test_latency(self):
        packet = Packet(created_at=1.0, delivered_at=1.5)
        assert packet.latency == pytest.approx(0.5)
        assert Packet().latency is None

    def test_payload_size(self):
        assert Packet(size=100).payload_size == 100 - 42
        assert Packet(size=10).payload_size == 0

    def test_encapsulated_size(self):
        packet = Packet(size=100)
        assert packet.encapsulated_size() == 100 + 44

    def test_defaults(self):
        packet = Packet()
        assert packet.direction is Direction.DOWNLINK
        assert packet.kind is PacketKind.DATA
        assert packet.teid is None


class TestByteBridge:
    def test_udp_roundtrip(self):
        flow = FiveTuple(
            src_ip=0x0A3C0001,
            dst_ip=0x08080808,
            src_port=40000,
            dst_port=53,
            protocol=PROTO_UDP,
        )
        packet = Packet(size=200, flow=flow, tos=0x28)
        recovered = Packet.from_bytes(packet.to_bytes())
        assert recovered.flow == flow
        assert recovered.size == packet.size
        assert recovered.tos == 0x28

    def test_tcp_roundtrip(self):
        flow = FiveTuple(
            src_ip=1, dst_ip=2, src_port=443, dst_port=50000,
            protocol=PROTO_TCP,
        )
        packet = Packet(size=128, flow=flow)
        recovered = Packet.from_bytes(packet.to_bytes())
        assert recovered.flow == flow

    def test_unsupported_protocol_raises(self):
        from repro.net.headers import IPv4Header

        ip = IPv4Header(src=1, dst=2, protocol=99, total_length=20)
        with pytest.raises(ValueError):
            Packet.from_bytes(ip.pack())
