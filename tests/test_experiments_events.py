"""Shape tests for the event-coupled data-plane experiments
(Figs 12-14, Tables 1-2, §5.4.2)."""

import math

import pytest

from repro.cp.core5g import SystemConfig
from repro.experiments.fig12 import page_load_under_handovers
from repro.experiments.fig13 import paging_data_plane
from repro.experiments.fig14 import handover_data_plane
from repro.experiments.smart_buffering import (
    analytical_drops,
    analytical_one_way_delay,
    simulated_drops,
    smart_buffering_cases,
)


class TestFig13Table1:
    @pytest.fixture(scope="class")
    def observations(self):
        return {
            config.name: paging_data_plane(config)
            for config in (SystemConfig.free5gc(), SystemConfig.l25gc())
        }

    def test_base_rtt_anchors(self, observations):
        assert observations["free5gc"].base_rtt_s == pytest.approx(
            116e-6, rel=0.10
        )
        assert observations["l25gc"].base_rtt_s == pytest.approx(
            25e-6, rel=0.10
        )

    def test_paging_time_halved(self, observations):
        free = observations["free5gc"].paging_time_s
        l25gc = observations["l25gc"].paging_time_s
        assert free == pytest.approx(59e-3, rel=0.15)
        assert l25gc == pytest.approx(28e-3, rel=0.15)
        assert free / l25gc == pytest.approx(2.0, rel=0.15)

    def test_rtt_after_paging_tracks_event(self, observations):
        for observation in observations.values():
            assert observation.rtt_after_paging_s == pytest.approx(
                observation.paging_time_s, rel=0.15
            )

    def test_elevated_packet_counts(self, observations):
        """Table 1: ~608 vs ~294 packets see elevated RTT at 10 Kpps."""
        free = observations["free5gc"].elevated_packets
        l25gc = observations["l25gc"].elevated_packets
        assert 450 <= free <= 700
        assert 230 <= l25gc <= 350
        assert free > 1.7 * l25gc

    def test_no_drops_with_3k_buffer(self, observations):
        for observation in observations.values():
            assert observation.dropped == 0

    def test_series_nonempty(self, observations):
        for observation in observations.values():
            assert len(observation.series) > 1000


class TestFig14Table2:
    @pytest.fixture(scope="class")
    def single(self):
        return {
            config.name: handover_data_plane(config, concurrent_sessions=1)
            for config in (SystemConfig.free5gc(), SystemConfig.l25gc())
        }

    @pytest.fixture(scope="class")
    def multi(self):
        return {
            config.name: handover_data_plane(config, concurrent_sessions=4)
            for config in (SystemConfig.free5gc(), SystemConfig.l25gc())
        }

    def test_ho_time_anchors(self, single):
        assert single["free5gc"].handover_time_s == pytest.approx(
            227e-3, rel=0.10
        )
        assert single["l25gc"].handover_time_s == pytest.approx(
            130e-3, rel=0.10
        )

    def test_rtt_after_ho_shape(self, single):
        """RTT after HO is close to (and driven by) the HO duration,
        and L25GC's is ~1.7-1.9x lower (242 vs 132 ms in the paper)."""
        free = single["free5gc"].rtt_after_handover_s
        l25gc = single["l25gc"].rtt_after_handover_s
        assert free > 1.5 * l25gc
        assert free == pytest.approx(
            single["free5gc"].handover_time_s, rel=0.20
        )

    def test_elevated_counts_expt_i(self, single):
        """~2301 vs ~1437, i.e. ~860 more packets buffered in free5GC."""
        free = single["free5gc"].elevated_packets
        l25gc = single["l25gc"].elevated_packets
        assert 1800 <= free <= 2600
        assert 1000 <= l25gc <= 1600
        assert 600 <= free - l25gc <= 1300

    def test_expt_i_no_drops(self, single):
        for observation in single.values():
            assert observation.dropped == 0

    def test_multisession_base_rtt(self, multi):
        """Expt ii: 425 us vs 39 us base RTT under 4 sessions."""
        assert multi["free5gc"].base_rtt_s == pytest.approx(425e-6, rel=0.15)
        assert multi["l25gc"].base_rtt_s == pytest.approx(39e-6, rel=0.15)

    def test_expt_ii_shared_buffer_drops(self, multi):
        """Table 2: free5GC drops (43 in the paper); L25GC none."""
        assert multi["free5gc"].dropped > 0
        assert multi["free5gc"].dropped < 200
        assert multi["l25gc"].dropped == 0

    def test_expt_ii_more_elevated_than_expt_i(self, single, multi):
        assert (
            multi["free5gc"].elevated_packets
            >= single["free5gc"].elevated_packets
        )


class TestShortRunRegressions:
    """Degenerate measurement windows must degrade, not crash.

    Both fig13 and fig14 take a percentile over ``series.window(...)``;
    with a zero-length warmup (or a handover at t=0) that window is
    empty and the base RTT is an absent statistic (nan), which in turn
    zeroes the elevated-packet count."""

    def test_fig13_zero_warmup(self):
        observation = paging_data_plane(
            SystemConfig.l25gc(), warmup=0.0, tail=0.15, rate_pps=1000
        )
        assert math.isnan(observation.base_rtt_s)
        assert observation.elevated_packets == 0
        assert observation.paging_time_s > 0
        assert len(observation.series) > 0

    def test_fig14_handover_at_zero(self):
        observation = handover_data_plane(
            SystemConfig.l25gc(),
            handover_at=0.0,
            run_until=0.3,
            rate_pps=1000,
        )
        assert math.isnan(observation.base_rtt_s)
        assert observation.elevated_packets == 0
        assert observation.handover_time_s > 0
        assert len(observation.series) > 0


class TestSmartBufferingEquations:
    def test_eq1_equal_buffers(self):
        """Case (i): both schemes lose ~800 packets."""
        assert analytical_drops(10_000, 0.130, 500) == 800

    def test_eq1_large_upf_buffer(self):
        """Case (ii): the 1500-packet UPF buffer loses nothing."""
        assert analytical_drops(10_000, 0.130, 1500) == 0

    def test_eq1_simulation_agrees(self):
        for queue in (100, 500, 1300, 1500):
            analytic = analytical_drops(10_000, 0.130, queue)
            simulated = simulated_drops(10_000, 0.130, queue)
            assert abs(simulated - analytic) <= 2

    def test_eq2_hairpin_penalty(self):
        """3GPP's hairpin adds two extra 10 ms propagation legs."""
        hairpin = analytical_one_way_delay(0.130, 0.010, hairpin=True)
        direct = analytical_one_way_delay(0.130, 0.010, hairpin=False)
        assert hairpin - direct == pytest.approx(0.020)

    def test_cases_table(self):
        cases = smart_buffering_cases()
        case_i = {row.scheme: row for row in cases["case-i"]}
        case_ii = {row.scheme: row for row in cases["case-ii"]}
        # Equal buffers: similar loss either way.
        assert case_i["3gpp-hairpin"].drops == case_i["l25gc-smart"].drops
        # Bigger UPF buffer: only the hairpin scheme still loses.
        assert case_ii["l25gc-smart"].drops == 0
        assert case_ii["3gpp-hairpin"].drops == pytest.approx(800, abs=50)
        for case in (case_i, case_ii):
            assert (
                case["3gpp-hairpin"].one_way_delay_s
                > case["l25gc-smart"].one_way_delay_s
            )


class TestFig12PageLoad:
    @pytest.fixture(scope="class")
    def comparison(self):
        return page_load_under_handovers()

    def test_stalls_derived_from_procedures(self, comparison):
        assert comparison.free5gc_stall_s > 0.20  # above the min RTO
        assert comparison.l25gc_stall_s < 0.20    # below the min RTO

    def test_plt_improvement_band(self, comparison):
        """The paper reports 12.5 %; our TCP model lands in the same
        direction at ~5-10 % (see EXPERIMENTS.md for the deviation)."""
        assert 0.04 <= comparison.plt_improvement <= 0.25

    def test_plt_magnitudes(self, comparison):
        """~32 s vs ~28 s in the paper's setup."""
        assert 20.0 <= comparison.l25gc.plt <= 35.0
        assert comparison.free5gc.plt > comparison.l25gc.plt

    def test_spurious_rtx_only_for_free5gc(self, comparison):
        assert comparison.free5gc.spurious_timeouts > 0
        assert comparison.free5gc.retransmissions > 300
        assert comparison.l25gc.spurious_timeouts == 0
        assert comparison.l25gc.retransmissions == 0

    def test_everything_transferred(self, comparison):
        assert (
            comparison.free5gc.bytes_transferred
            == comparison.l25gc.bytes_transferred
        )
