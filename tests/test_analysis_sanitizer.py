"""Tests for the runtime descriptor sanitizer (repro.analysis.sanitizer).

These tests commit the exact sins the zero-copy transports make
possible — mutating a message after handing it to the bus, enqueuing
one descriptor on two rings — and assert the sanitizer catches each
with an actionable report: the offending send site and a field-level
diff.
"""

from dataclasses import dataclass, field

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    DescriptorSanitizer,
    SanitizerError,
    sanitized,
)
from repro.core import Channel, DEFAULT_COSTS, MessageBus, Ring
from repro.core.pool import Descriptor
from repro.sim import Environment


@dataclass
class Payload:
    """A deliberately mutable message, as a buggy NF would write it."""

    supi: str = "imsi-001"
    teid: int = 0
    meta: dict = field(default_factory=dict)


def make_bus():
    env = Environment()
    bus = MessageBus(env, DEFAULT_COSTS, default_channel=Channel.SHARED_MEMORY)
    return env, bus


class TestBusIntegration:
    def test_clean_run_has_no_violations(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        with sanitized() as san:
            bus.send("ran", "amf", Payload(), name="Registration")
            env.run()
        assert san.violations == []
        assert san.handoffs == 1
        assert san.report() == "descriptor sanitizer: no violations"

    def test_mutate_after_send_caught_with_site_and_diff(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        message = Payload(supi="imsi-042", teid=7)
        with sanitized() as san:
            bus.send("ran", "amf", message, name="Registration")  # SEND-SITE
            # The sender keeps writing through its live reference while
            # the message is in flight — the zero-copy hazard.
            message.teid = 99
            message.meta["rogue"] = True
            env.run()
        assert [v.kind for v in san.violations] == ["mutate-after-send"]
        violation = san.violations[0]
        # The report names this file and the line of the offending send.
        assert "test_analysis_sanitizer.py" in violation.send_site
        send_line = int(violation.send_site.rsplit(":", 1)[1])
        assert "SEND-SITE" in open(__file__).readlines()[send_line - 1]
        # ... and gives a field-level diff of what changed.
        diffed = {path: (before, after) for path, before, after in violation.diff}
        assert diffed["teid"] == ("7", "99")
        assert any(path.startswith("meta") for path in diffed)
        assert "handed over at" in violation.report()
        assert "ran -> amf" in violation.report()

    def test_double_send_flagged_as_double_enqueue(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        bus.register("smf", lambda message, b: None)
        message = Payload()
        with sanitized() as san:
            bus.send("ran", "amf", message)
            bus.send("ran", "smf", message)  # still in flight to amf
            env.run()
        assert [v.kind for v in san.violations] == ["double-enqueue"]
        assert "alias" in san.violations[0].detail

    def test_dropped_message_untracked(self):
        env, bus = make_bus()
        message = Payload()
        with sanitized() as san:
            bus.send("ran", "ghost", message)  # unknown endpoint: dropped
            env.run()
            message.teid = 5  # mutating a dropped message is harmless
            bus.register("amf", lambda m, b: None)
            bus.send("ran", "amf", message)  # legal: ownership was freed
            env.run()
        assert san.violations == []

    def test_primitive_messages_not_tracked(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        with sanitized() as san:
            bus.send("ran", "amf", "service-request")
            bus.send("ran", "amf", "service-request")  # interned str: fine
            env.run()
        assert san.violations == []
        assert san.handoffs == 0


class TestRingIntegration:
    def test_clean_enqueue_dequeue(self):
        ring = Ring(8, name="rx")
        with sanitized() as san:
            for _ in range(4):
                descriptor = Descriptor(payload={"seq": 1})
                ring.enqueue(descriptor)
                assert ring.dequeue() is descriptor
        assert san.violations == []
        assert san.handoffs == 4

    def test_double_enqueue_across_rings_caught(self):
        rx, tx = Ring(4, name="rx"), Ring(4, name="tx")
        descriptor = Descriptor(payload={"pkt": 1})
        with sanitized() as san:
            rx.enqueue(descriptor)
            tx.enqueue(descriptor)  # aliased: still queued on rx
        assert [v.kind for v in san.violations] == ["double-enqueue"]
        violation = san.violations[0]
        assert violation.channel == "rx"
        assert "'tx'" in violation.detail and "'rx'" in violation.detail
        assert "test_analysis_sanitizer.py" in violation.send_site
        assert "test_analysis_sanitizer.py" in violation.detect_site

    def test_use_after_dequeue_caught(self):
        rx, tx = Ring(4, name="rx"), Ring(4, name="tx")
        descriptor = Descriptor(payload={"pkt": 1})
        with sanitized() as san:
            rx.enqueue(descriptor)
            tx.enqueue(descriptor)  # the aliasing bug (violation 1)
            assert rx.dequeue() is descriptor  # first consumer owns it
            assert tx.dequeue() is descriptor  # stale alias surfaces
        kinds = [v.kind for v in san.violations]
        assert kinds == ["double-enqueue", "use-after-dequeue"]
        assert "stale alias" in san.violations[1].detail

    def test_mutate_while_queued_caught(self):
        ring = Ring(4, name="rx")
        descriptor = Descriptor(payload={"seq": 1})
        with sanitized() as san:
            ring.enqueue(descriptor)
            descriptor.payload["seq"] = 999  # producer writes after handoff
            ring.dequeue()
        assert [v.kind for v in san.violations] == ["mutate-after-send"]
        diffed = {p: (b, a) for p, b, a in san.violations[0].diff}
        assert any("seq" in path for path in diffed)

    def test_burst_ops_are_instrumented(self):
        ring = Ring(8, name="rx")
        descriptors = [Descriptor(payload={"i": i}) for i in range(3)]
        with sanitized() as san:
            ring.enqueue_burst(descriptors)
            ring.enqueue_burst([descriptors[0]])  # still queued: aliased
            ring.dequeue_burst(4)
        assert "double-enqueue" in [v.kind for v in san.violations]

    def test_clear_untracks_descriptors(self):
        ring = Ring(4, name="rx")
        descriptor = Descriptor(payload={"seq": 1})
        with sanitized() as san:
            ring.enqueue(descriptor)
            ring.clear()
            descriptor.payload["seq"] = 2  # freed: mutation is harmless
            ring.enqueue(descriptor)  # re-enqueue is legal after clear
            ring.dequeue()
        assert san.violations == []

    def test_release_frees_ownership(self):
        ring = Ring(4, name="rx")
        descriptor = Descriptor(payload={"seq": 1})
        with sanitized() as san:
            ring.enqueue(descriptor)
            ring.dequeue()
            san.release(descriptor)  # returned to the pool
            ring.enqueue(descriptor)  # fresh cycle, no use-after-dequeue
            ring.dequeue()
        assert san.violations == []


class TestModes:
    def test_strict_mode_raises_immediately(self):
        rx, tx = Ring(4, name="rx"), Ring(4, name="tx")
        descriptor = Descriptor(payload={})
        with sanitized(strict=True) as san:
            rx.enqueue(descriptor)
            with pytest.raises(SanitizerError) as excinfo:
                tx.enqueue(descriptor)
        assert "double-enqueue" in str(excinfo.value)
        assert len(san.violations) == 1

    def test_disabled_by_default_costs_nothing(self, request):
        if request.config.getoption("--sanitize"):
            pytest.skip("suite-wide sanitizer installed by --sanitize")
        assert sanitizer.active() is None
        ring = Ring(4, name="rx")
        descriptor = Descriptor(payload={})
        ring.enqueue(descriptor)
        ring.enqueue(descriptor)  # would be a violation if enabled
        assert ring.dequeue() is descriptor

    def test_enable_disable_roundtrip(self):
        san = sanitizer.enable()
        try:
            assert sanitizer.active() is san
            assert isinstance(san, DescriptorSanitizer)
        finally:
            sanitizer.disable()
        assert sanitizer.active() is None

    def test_sanitized_restores_previous(self):
        outer = sanitizer.enable()
        try:
            with sanitized() as inner:
                assert sanitizer.active() is inner
            assert sanitizer.active() is outer
        finally:
            sanitizer.disable()

    def test_reset_clears_state(self):
        rx, tx = Ring(4, name="rx"), Ring(4, name="tx")
        descriptor = Descriptor(payload={})
        with sanitized() as san:
            rx.enqueue(descriptor)
            tx.enqueue(descriptor)
            assert san.violations and san.handoffs
            san.reset()
            assert san.violations == [] and san.handoffs == 0

    def test_report_aggregates_multiple_violations(self):
        rx, tx = Ring(4, name="rx"), Ring(4, name="tx")
        first, second = Descriptor(payload={}), Descriptor(payload={})
        with sanitized() as san:
            for descriptor in (first, second):
                rx.enqueue(descriptor)
                tx.enqueue(descriptor)
        report = san.report()
        assert report.startswith("descriptor sanitizer: 2 violation(s)")
        assert report.count("double-enqueue") == 2


class TestLeakReport:
    def test_descriptor_left_in_ring_is_a_leak(self):
        ring = Ring(4, name="rx")
        descriptor = Descriptor(payload={"seq": 1})
        with sanitized() as san:
            ring.enqueue(descriptor)  # LEAK-SITE — never dequeued
        [leak] = san.leaks()
        assert leak.state == "in-ring"
        assert leak.channel == "rx"
        assert "test_analysis_sanitizer.py" in leak.send_site
        leak_line = int(leak.send_site.rsplit(":", 1)[1])
        assert "LEAK-SITE" in open(__file__).readlines()[leak_line - 1]
        assert "leaked descriptor (in-ring)" in leak.report()
        assert "never dequeued" in leak.report()

    def test_message_never_delivered_is_a_leak(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        with sanitized() as san:
            bus.send("ran", "amf", Payload(), name="Registration")
            # env.run() never happens: the message stays in flight.
        [leak] = san.leaks()
        assert leak.state == "in-flight"
        assert leak.channel == "ran -> amf"

    def test_consumed_descriptors_are_not_leaks(self):
        ring = Ring(4, name="rx")
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        descriptor = Descriptor(payload={"seq": 1})
        with sanitized() as san:
            ring.enqueue(descriptor)
            ring.dequeue()  # checked out: the consumer's responsibility
            bus.send("ran", "amf", Payload(), name="Registration")
            env.run()  # delivered
        assert san.leaks() == []
        assert san.leak_report() == (
            "descriptor sanitizer: no leaked descriptors"
        )

    def test_cleared_and_released_are_not_leaks(self):
        ring = Ring(4, name="rx")
        first, second = Descriptor(payload={}), Descriptor(payload={})
        with sanitized() as san:
            ring.enqueue(first)
            ring.clear()
            ring.enqueue(second)
            san.release(second)
        assert san.leaks() == []

    def test_leak_report_aggregates(self):
        ring = Ring(4, name="rx")
        with sanitized() as san:
            for index in range(2):
                ring.enqueue(Descriptor(payload={"i": index}))
        report = san.leak_report()
        assert report.startswith(
            "descriptor sanitizer: 2 leaked descriptor(s)"
        )
        assert report.count("leaked descriptor (in-ring)") == 2

    def test_suite_fixture_warns_on_leak(self, request):
        """Under --sanitize the conftest fixture turns leaks into
        warnings, not failures; without it this just documents the API."""
        san = sanitizer.active() or sanitizer.DescriptorSanitizer()
        assert san.leaks() == []
