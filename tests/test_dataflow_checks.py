"""Seeded-fixture tests for the typestate checks W005–W008.

Each fixture triggers exactly its intended finding, with the call
chain / path evidence asserted; the "clean" twins prove the checks
understand the repo's legal idioms (rehome, guarded release, bounded
recovery).
"""

import textwrap

import pytest

from repro.analysis import lifecycle, sanitizer
from repro.analysis.dataflow import analyze_dataflow


def run_checks(tmp_path, tree, checks=None):
    files = []
    for relpath, source in sorted(tree.items()):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        files.append((str(path), path.read_text()))
    return analyze_dataflow(files, checks=checks)


def codes(report):
    return [f.code for f in report.findings]


class TestW005Descriptor:
    def test_mutate_after_send_field_write(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def emit(chan, desc):
                    chan.send(desc)
                    desc.seq = 2
            """,
        }, checks=["W005"])
        assert codes(report) == ["W005"]
        finding = report.findings[0]
        assert lifecycle.MUTATE_AFTER_SEND in finding.message
        assert "'sent'" in finding.message
        assert any("send() hands over 'desc'" in s for s in finding.chain)
        assert any("writes .seq" in s for s in finding.chain)

    def test_double_enqueue(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def emit(ring, desc):
                    ring.enqueue(desc)
                    ring.enqueue(desc)
            """,
        }, checks=["W005"])
        assert codes(report) == ["W005"]
        assert lifecycle.DOUBLE_ENQUEUE in report.findings[0].message

    def test_mutating_container_method_after_send(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def emit(chan, desc):
                    chan.send(desc)
                    desc.payload.append(1)
            """,
        }, checks=["W005"])
        assert codes(report) == ["W005"]
        assert lifecycle.MUTATE_AFTER_SEND in report.findings[0].message

    def test_interprocedural_mutation_through_helper(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def stamp(desc):
                    desc.seq = 9

                def emit(chan, desc):
                    chan.send(desc)
                    stamp(desc)
            """,
        }, checks=["W005"])
        assert codes(report) == ["W005"]
        finding = report.findings[0]
        assert lifecycle.MUTATE_AFTER_SEND in finding.message
        assert any("passes 'desc' to pkg.up.stamp" in s
                   for s in finding.chain)
        assert any("writes .seq" in s for s in finding.chain)

    def test_branch_where_only_one_path_sends(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def emit(chan, desc, flag):
                    if flag:
                        chan.send(desc)
                    desc.seq = 2
            """,
        }, checks=["W005"])
        # The mutation is reachable after the send on the flag path.
        assert codes(report) == ["W005"]

    def test_rebinding_resets_the_descriptor(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def emit(chan, desc, pool):
                    chan.send(desc)
                    desc = pool.allocate()
                    desc.seq = 1
                    chan.send(desc)
            """,
        }, checks=["W005"])
        assert report.findings == []

    def test_bus_style_multiarg_send_is_not_a_handoff(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def exchange(bus, source, dest, msg):
                    bus.send(source, dest, msg)
                    bus.send(dest, source, msg)
            """,
        }, checks=["W005"])
        assert report.findings == []


class TestW006SessionLifecycle:
    def test_use_after_remove(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cp.py": """
                class UPFSession:
                    pass

                class Handler:
                    def modify(self, table):
                        s = UPFSession()
                        table.add(s)
                        table.remove(s.seid)
                        s.install_far(3)
            """,
        }, checks=["W006"])
        assert codes(report) == ["W006"]
        finding = report.findings[0]
        assert lifecycle.USE_AFTER_REMOVE in finding.message
        assert "'removed'" in finding.message
        assert any("state 'removed'" in s for s in finding.chain)

    def test_double_establish(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cp.py": """
                class UPFSession:
                    pass

                class Handler:
                    def establish(self, table, mirror):
                        s = UPFSession()
                        table.add(s)
                        mirror.add(s)
            """,
        }, checks=["W006"])
        assert codes(report) == ["W006"]
        assert lifecycle.DOUBLE_ESTABLISH in report.findings[0].message

    def test_remove_before_establish(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cp.py": """
                class UPFSession:
                    pass

                class Handler:
                    def oops(self, table):
                        s = UPFSession()
                        table.remove(s.seid)
            """,
        }, checks=["W006"])
        assert codes(report) == ["W006"]
        assert lifecycle.REMOVE_BEFORE_ESTABLISH in report.findings[0].message

    def test_rehome_remove_then_add_is_legal(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cp.py": """
                class Handler:
                    def rehome(self, source, target, seid):
                        s = source.remove(seid)
                        target.add(s)
            """,
        }, checks=["W006"])
        assert report.findings == []

    def test_dangling_far_reference_on_some_path(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cp.py": """
                class UPFSession:
                    pass

                class FAR:
                    def __init__(self, far_id):
                        self.far_id = far_id

                class PDR:
                    def __init__(self, far_id):
                        self.far_id = far_id

                class Handler:
                    def establish(self, flag):
                        s = UPFSession()
                        s.install_far(FAR(far_id=1))
                        if flag:
                            s.install_far(FAR(far_id=2))
                        s.install_pdr(PDR(far_id=2))
            """,
        }, checks=["W006"])
        assert codes(report) == ["W006"]
        finding = report.findings[0]
        assert lifecycle.DANGLING_RULE_REF in finding.message
        assert "far_id=2" in finding.message
        assert any("no matching install_far on every path" in s
                   for s in finding.chain)

    def test_far_installed_on_every_path_is_clean(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cp.py": """
                class UPFSession:
                    pass

                class FAR:
                    def __init__(self, far_id):
                        self.far_id = far_id

                class PDR:
                    def __init__(self, far_id):
                        self.far_id = far_id

                class Handler:
                    def establish(self):
                        s = UPFSession()
                        s.install_far(FAR(far_id=1))
                        s.install_pdr(PDR(far_id=1))
            """,
        }, checks=["W006"])
        assert report.findings == []

    def test_decoded_rule_ids_are_not_flagged(self, tmp_path):
        # Non-constant far_id (decoded from a message) marks the
        # session's rule set unknown — no dangling-ref claims.
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cp.py": """
                class UPFSession:
                    pass

                class FAR:
                    def __init__(self, far_id):
                        self.far_id = far_id

                class PDR:
                    def __init__(self, far_id):
                        self.far_id = far_id

                class Handler:
                    def establish(self, ie):
                        s = UPFSession()
                        s.install_far(FAR(far_id=ie.far_id))
                        s.install_pdr(PDR(far_id=7))
            """,
        }, checks=["W006"])
        assert report.findings == []


class TestW007LeakOnRaise:
    def test_acquire_then_raise_leaks(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                class Store:
                    def grab(self, slot, limit):
                        self.slab.adopt(slot)
                        if slot > limit:
                            raise ValueError(slot)
            """,
        }, checks=["W007"])
        assert codes(report) == ["W007"]
        finding = report.findings[0]
        assert lifecycle.LEAK_ON_RAISE in finding.message
        assert "slab slot" in finding.message
        assert any("adopt() acquires" in s for s in finding.chain)
        assert any("state 'held'" in s for s in finding.chain)

    def test_release_on_recovery_path_is_clean(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                class Store:
                    def grab(self, slot):
                        self.slab.adopt(slot)
                        try:
                            self.table.add(slot)
                        except Exception:
                            self.slab.release(slot)
                            raise
            """,
        }, checks=["W007"])
        assert report.findings == []

    def test_removed_session_lost_when_target_add_raises(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                class Mover:
                    def rehome(self, seid, target):
                        session = self.table.remove(seid)
                        self.other[target].add(session)
            """,
        }, checks=["W007"])
        assert codes(report) == ["W007"]
        finding = report.findings[0]
        assert lifecycle.LEAK_ON_RAISE in finding.message
        assert "removed session 'session'" in finding.message
        assert any("add() may raise" in s for s in finding.chain)

    def test_restore_to_source_on_failure_is_clean(self, tmp_path):
        # Bounded recovery: the second add() attempt on the except path
        # discharges the held session on both of its own edges.
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                class Mover:
                    def rehome(self, seid, target):
                        session = self.table.remove(seid)
                        try:
                            self.other[target].add(session)
                        except Exception:
                            self.table.add(session)
                            raise
            """,
        }, checks=["W007"])
        assert report.findings == []

    def test_pin_guard_idiom_is_clean(self, tmp_path):
        # `if not lb.pin(...): raise` — the raise arm never held the
        # pin; `if self.lb is not None:` on the recovery path refines
        # away the arm where no pin can exist.
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                class Table:
                    def add(self, session, shard):
                        if self.lb is not None and not self.lb.pin(
                            session, shard
                        ):
                            raise ValueError(shard)
                        try:
                            self.inner.add(session)
                        except Exception:
                            if self.lb is not None:
                                self.lb.release(session)
                            raise
            """,
        }, checks=["W007"])
        assert report.findings == []

    def test_returning_the_session_transfers_ownership(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                class Table:
                    def pop(self, seid):
                        session = self.inner.remove(seid)
                        return session
            """,
        }, checks=["W007"])
        assert report.findings == []


class TestW008DeadConfig:
    def test_unread_config_flag(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/conf.py": """
                class KnobConfig:
                    used: bool = True
                    orphaned: bool = False

                def reader(cfg):
                    return cfg.used
            """,
        }, checks=["W008"])
        assert codes(report) == ["W008"]
        finding = report.findings[0]
        assert lifecycle.DEAD_CONFIG in finding.message
        assert "'orphaned'" in finding.message
        assert finding.severity == "warning"

    def test_discarded_metric_instrument(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/wiring.py": """
                def wire(registry):
                    registry.gauge("upf.depth")
                    kept = registry.counter("upf.drops")
                    return kept
            """,
        }, checks=["W008"])
        assert codes(report) == ["W008"]
        assert "gauge()" in report.findings[0].message

    def test_private_and_read_fields_are_clean(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/conf.py": """
                class KnobConfig:
                    used: bool = True
                    _cache: dict = None

                def reader(cfg):
                    return cfg.used
            """,
        }, checks=["W008"])
        assert report.findings == []


class TestSharedMachinery:
    def test_multi_code_noqa_suppresses_both(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def emit(chan, desc):
                    chan.send(desc)
                    desc.seq = 2  # repro: noqa[W005,W006]
            """,
        }, checks=["W005", "W006"])
        assert report.findings == []

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def emit(chan, desc):
                    chan.send(desc)
                    desc.seq = 2  # repro: noqa[W006]
            """,
        }, checks=["W005"])
        assert codes(report) == ["W005"]

    def test_instrumentation_packages_are_skipped(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/analysis/__init__.py": "",
            "pkg/analysis/probe.py": """
                def emit(chan, desc):
                    chan.send(desc)
                    desc.seq = 2
            """,
        })
        assert report.findings == []

    def test_messages_are_line_free_for_baseline_immunity(self, tmp_path):
        # Baseline keys are (path, code, message): the message must not
        # embed line numbers or shifting code would go stale.
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def emit(chan, desc):
                    chan.send(desc)
                    desc.seq = 2
            """,
        })
        shifted = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                # a comment pushing everything down


                def emit(chan, desc):
                    chan.send(desc)
                    desc.seq = 2
            """,
        })
        assert [f.message for f in report.findings] == [
            f.message for f in shifted.findings
        ]
        assert report.findings[0].line != shifted.findings[0].line


class TestSharedVocabulary:
    """The sanitizer and the static checks must cite identical terms."""

    def test_sanitizer_states_come_from_lifecycle(self):
        assert sanitizer._State.IN_FLIGHT.value == (
            lifecycle.TRANSPORT_IN_FLIGHT
        )
        assert sanitizer._State.IN_RING.value == lifecycle.TRANSPORT_IN_RING
        assert sanitizer._State.CHECKED_OUT.value == (
            lifecycle.TRANSPORT_CHECKED_OUT
        )

    def test_transport_states_map_onto_descriptor_protocol(self):
        assert set(lifecycle.TRANSPORT_STATE_NAMES.values()) <= set(
            lifecycle.DESCRIPTOR_STATES
        )

    def test_violation_kind_strings(self):
        assert lifecycle.MUTATE_AFTER_SEND == "mutate-after-send"
        assert lifecycle.DOUBLE_ENQUEUE == "double-enqueue"
        assert lifecycle.USE_AFTER_DEQUEUE == "use-after-dequeue"

    def test_w005_findings_cite_sanitizer_kinds(self, tmp_path):
        report = run_checks(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/up.py": """
                def emit(chan, desc):
                    chan.send(desc)
                    chan.send(desc)
            """,
        }, checks=["W005"])
        assert report.findings[0].message.startswith(
            lifecycle.DOUBLE_ENQUEUE
        )
