"""Integrated Fig 5 scenario: a serving region with multiple 5GC units
behind the UE-aware LB, surviving a unit failure without re-attach.

This ties the deployment layer (§4) to the resiliency framework (§3.5)
end to end: UE state checkpointed from the primary unit restores into a
replica unit's NFs, the UPF session is reconstructed from the restored
SM context, and data flows again — no re-registration.
"""

import pytest

from repro.cp import FiveGCore, ProcedureRunner, SystemConfig
from repro.cp.nfs import AMF, SMF
from repro.deploy import UEAwareLoadBalancer, UnitHandle
from repro.net import Direction, FiveTuple, Packet, PacketKind
from repro.pfcp.builder import build_session_establishment
from repro.ran import RMState
from repro.resiliency import ResiliencyFramework
from repro.sim import MS, Environment

SUPI = "imsi-208930000050001"


class Region:
    """Two 5GC units + LB + resiliency, in one simulation."""

    def __init__(self):
        self.env = Environment()
        self.units = {
            unit_id: FiveGCore(self.env, SystemConfig.l25gc())
            for unit_id in (0, 1)
        }
        for core in self.units.values():
            for gnb in core.gnbs.values():
                gnb.radio_latency = 0.0
        self.lb = UEAwareLoadBalancer()
        for unit_id in self.units:
            self.lb.add_unit(UnitHandle(unit_id=unit_id))
        self.framework = None

    def primary_for(self, supi):
        return self.units[self.lb.assign(supi).unit_id]


@pytest.fixture
def region():
    return Region()


def onboard(region, supi=SUPI):
    """Register + session on the LB-chosen unit, with replication."""
    core = region.primary_for(supi)
    runner = ProcedureRunner(core)
    ue = core.add_ue(supi)
    framework = ResiliencyFramework(
        region.env,
        {"amf": core.amf, "smf": core.smf},
        sync_period=5 * MS,
    )
    framework.start()
    region.framework = framework
    detail = {}

    def scenario():
        yield from runner.register_ue(ue, gnb_id=1)
        framework.log_message("reg", Direction.UPLINK, PacketKind.CONTROL)
        yield from framework.commit_event()
        result = yield from runner.establish_session(ue)
        detail.update(result.detail)
        framework.log_message("est", Direction.UPLINK, PacketKind.CONTROL)
        yield from framework.commit_event()
        yield region.env.timeout(50 * MS)  # checkpoints flow

    region.env.process(scenario())
    region.env.run(until=region.env.now + 1.0)
    return core, ue, detail


def fail_over(region, primary, ue, detail):
    """Fail the primary unit; restore state into the survivor."""
    framework = region.framework
    framework.stop()
    failed_id = next(
        unit_id for unit_id, core in region.units.items() if core is primary
    )
    region.lb.mark_failed(failed_id)
    survivor = region.units[region.lb.assign(ue.supi).unit_id]
    assert survivor is not primary

    # Restore control-plane state from the remote replica.
    survivor.amf.restore(framework.remote.state_of("amf"))
    survivor.smf.restore(framework.remote.state_of("smf"))
    survivor.ues[ue.supi] = ue
    survivor.gnbs[1].connect(ue)

    # Rebuild the UPF session from the restored SM context — the
    # forwarding-state reconstruction of §3.5.
    sm = survivor.smf.context_for(ue.supi, 1)
    establishment = build_session_establishment(
        seid=sm.seid,
        sequence=survivor.smf.next_sequence(),
        ue_ip=sm.ue_ip,
        upf_address=survivor.UPF_ADDRESS,
        ul_teid=sm.ul_teid,
        gnb_address=survivor.gnbs[1].address,
        dl_teid=sm.dl_teid,
    )
    survivor.upf_c.handle(establishment)
    survivor.dl_routes[sm.dl_teid] = (survivor.gnbs[1], ue)
    return survivor, sm


class TestRegionFailover:
    def test_state_survives_unit_failure(self, region):
        primary, ue, detail = onboard(region)
        survivor, sm = fail_over(region, primary, ue, detail)
        # Identity and session state intact — no re-attach.
        assert ue.rm_state is RMState.REGISTERED
        assert survivor.amf.context(ue.supi).guti == ue.guti
        assert sm.ue_ip == detail["ue_ip"]
        assert sm.ul_teid == detail["ul_teid"]

    def test_data_flows_on_survivor(self, region):
        primary, ue, detail = onboard(region)
        survivor, sm = fail_over(region, primary, ue, detail)
        before = len(ue.received)
        survivor.inject_downlink(
            Packet(direction=Direction.DOWNLINK,
                   flow=FiveTuple(src_ip=1, dst_ip=detail["ue_ip"],
                                  src_port=80, dst_port=4000),
                   created_at=region.env.now)
        )
        region.env.run(until=region.env.now + 1 * MS)
        assert len(ue.received) == before + 1

    def test_paging_works_on_survivor(self, region):
        """A full procedure runs on the restored unit: idle + page."""
        primary, ue, detail = onboard(region)
        survivor, sm = fail_over(region, primary, ue, detail)
        runner = ProcedureRunner(survivor)

        def on_report(report):
            def page():
                yield from runner.page_ue(ue)

            region.env.process(page())

        survivor.on_report = on_report

        def idle():
            yield from runner.release_to_idle(ue)

        region.env.process(idle())
        region.env.run(until=region.env.now + 1.0)
        survivor.inject_downlink(
            Packet(direction=Direction.DOWNLINK,
                   flow=FiveTuple(src_ip=1, dst_ip=detail["ue_ip"],
                                  src_port=80, dst_port=4000),
                   created_at=region.env.now)
        )
        region.env.run(until=region.env.now + 1.0)
        from repro.ran import CMState

        assert ue.cm_state is CMState.CONNECTED
        assert len(ue.received) >= 1

    def test_lb_affinity_moves_once(self, region):
        primary, ue, detail = onboard(region)
        survivor, _ = fail_over(region, primary, ue, detail)
        survivor_id = next(
            unit_id for unit_id, core in region.units.items()
            if core is survivor
        )
        # Subsequent lookups stay pinned to the survivor.
        for _ in range(5):
            assert region.lb.assign(ue.supi).unit_id == survivor_id
