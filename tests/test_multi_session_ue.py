"""Multiple PDU sessions per UE (the paper's Fig 2 scenario).

A 5G home gateway acts as one 'virtual UE' running several sessions
with different QoS — phone, IoT, smart TV.  Each session gets its own
SEID/TEIDs/UE IP and its own PDR set, buffers and QoS state, and the
events of one session (idle, handover) must not disturb the others.
"""

import pytest

from repro.cp import FiveGCore, ProcedureRunner, SystemConfig
from repro.net import Direction, FiveTuple, Packet
from repro.sim import Environment

SUPI = "imsi-208930000060001"


@pytest.fixture
def gateway():
    """A registered UE with three PDU sessions."""
    env = Environment()
    core = FiveGCore(env, SystemConfig.l25gc())
    for gnb in core.gnbs.values():
        gnb.radio_latency = 0.0
    runner = ProcedureRunner(core)
    ue = core.add_ue(SUPI)
    details = {}

    def setup():
        yield from runner.register_ue(ue, gnb_id=1)
        for session_id in (1, 2, 3):
            result = yield from runner.establish_session(
                ue, pdu_session_id=session_id
            )
            details[session_id] = result.detail

    env.process(setup())
    env.run()
    return env, core, runner, ue, details


def dl(ue_ip, seq=None):
    return Packet(
        direction=Direction.DOWNLINK,
        seq=seq,
        flow=FiveTuple(src_ip=1, dst_ip=ue_ip, src_port=80, dst_port=4000),
        created_at=0.0,
    )


class TestMultiSessionUE:
    def test_distinct_resources_per_session(self, gateway):
        env, core, runner, ue, details = gateway
        ips = {detail["ue_ip"] for detail in details.values()}
        seids = {detail["seid"] for detail in details.values()}
        teids = {detail["ul_teid"] for detail in details.values()}
        assert len(ips) == len(seids) == len(teids) == 3
        assert len(core.sessions) == 3
        assert set(ue.sessions) == {1, 2, 3}

    def test_traffic_demultiplexed_by_session(self, gateway):
        env, core, runner, ue, details = gateway
        for session_id, detail in details.items():
            for _ in range(session_id):  # 1, 2, 3 packets
                core.inject_downlink(dl(detail["ue_ip"]))
        env.run()
        # 6 packets total, all to the same UE, via 3 different tunnels.
        assert len(ue.received) == 6
        teids = [packet.teid for packet in ue.received]
        assert len(set(teids)) == 3

    def test_idle_buffers_every_session_independently(self, gateway):
        env, core, runner, ue, details = gateway

        def idle():
            # AN release deactivates each session's DL FAR.
            for session_id in (1, 2, 3):
                yield from runner.release_to_idle(
                    ue, pdu_session_id=session_id
                )

        env.process(idle())
        env.run()
        for session_id, detail in details.items():
            core.inject_downlink(dl(detail["ue_ip"]))
        sessions = {
            session.seid: session for session in core.sessions.sessions()
        }
        for detail in details.values():
            assert len(sessions[detail["seid"]].buffer) == 1
        assert ue.received == []

    def test_handover_moves_all_traffic_of_the_ue(self, gateway):
        """The N2 handover procedure switches session 1; the others
        keep flowing through their own tunnels regardless."""
        env, core, runner, ue, details = gateway

        def move():
            yield from runner.handover(ue, target_gnb_id=2,
                                       pdu_session_id=1)

        env.process(move())
        env.run()
        core.inject_downlink(dl(details[1]["ue_ip"]))
        core.inject_downlink(dl(details[2]["ue_ip"]))
        env.run()
        # Session 1 arrives at the target gNB; session 2's route still
        # points at its established tunnel (source gNB, where the
        # radio link no longer is -- in a full multi-session HO the SMF
        # would switch every session; we assert the isolation).
        assert core.gnbs[2].delivered >= 1

    def test_deregistration_releases_everything(self, gateway):
        env, core, runner, ue, details = gateway

        def teardown():
            yield from runner.deregister_ue(ue)

        env.process(teardown())
        env.run()
        assert len(core.sessions) == 0
        assert core.ue_ip_pool.in_use == 0
        assert ue.sessions == {}
