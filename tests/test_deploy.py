"""Tests for deployment: LB affinity, RSS, canary, placement."""

import pytest

from repro.deploy import (
    CanaryController,
    FiveGCUnit,
    NodeSpec,
    PlacementEngine,
    RSSIndirection,
    UEAwareLoadBalancer,
    UnitHandle,
    hash_five_tuple,
    toeplitz_hash,
)
from repro.net import FiveTuple, Packet
from repro.sim import Environment


class TestLoadBalancer:
    def _lb(self, units=3, capacity=10):
        lb = UEAwareLoadBalancer()
        for unit_id in range(units):
            lb.add_unit(UnitHandle(unit_id=unit_id, capacity_sessions=capacity))
        return lb

    def test_balanced_assignment(self):
        lb = self._lb()
        for index in range(9):
            lb.assign(f"imsi-{index}")
        assert set(lb.distribution().values()) == {3}

    def test_affinity_stable(self):
        """§4: a UE session stays pinned to its 5GC unit."""
        lb = self._lb()
        first = lb.assign("imsi-A").unit_id
        for index in range(20):
            lb.assign(f"imsi-filler-{index}")
        assert lb.assign("imsi-A").unit_id == first
        # Affinity hits don't double-count sessions.
        assert sum(lb.distribution().values()) == 21

    def test_failed_unit_triggers_reassignment(self):
        lb = self._lb()
        unit = lb.assign("imsi-A").unit_id
        lb.mark_failed(unit)
        new_unit = lb.assign("imsi-A").unit_id
        assert new_unit != unit
        # And the new affinity is itself stable.
        assert lb.assign("imsi-A").unit_id == new_unit

    def test_capacity_exhaustion(self):
        lb = self._lb(units=1, capacity=2)
        assert lb.assign("imsi-1") is not None
        assert lb.assign("imsi-2") is not None
        assert lb.assign("imsi-3") is None
        assert lb.rejected == 1

    def test_release_frees_capacity(self):
        lb = self._lb(units=1, capacity=1)
        lb.assign("imsi-1")
        lb.release("imsi-1")
        assert lb.assign("imsi-2") is not None

    def test_duplicate_unit_rejected(self):
        lb = self._lb(units=1)
        with pytest.raises(ValueError):
            lb.add_unit(UnitHandle(unit_id=0))


class TestRSS:
    def test_toeplitz_deterministic(self):
        data = b"\x0a\x00\x00\x01\x08\x08\x08\x08\x9c\x40\x01\xbb"
        assert toeplitz_hash(data) == toeplitz_hash(data)

    def test_toeplitz_key_too_short(self):
        with pytest.raises(ValueError):
            toeplitz_hash(b"x" * 64, key=b"short")

    def test_same_flow_same_queue(self):
        rss = RSSIndirection(num_queues=8)
        flow = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        assert rss.queue_for(flow) == rss.queue_for(flow)

    def test_flows_spread(self):
        rss = RSSIndirection(num_queues=4)
        queues = {
            rss.queue_for(
                FiveTuple(src_ip=index, dst_ip=index ^ 0xFFFF,
                          src_port=1000 + index, dst_port=443)
            )
            for index in range(200)
        }
        assert queues == {0, 1, 2, 3}

    def test_dispatch_preserves_flow_affinity(self):
        rss = RSSIndirection(num_queues=4)
        flow = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        packets = [Packet(flow=flow) for _ in range(10)]
        queues = rss.dispatch(packets)
        non_empty = [queue for queue in queues if queue]
        assert len(non_empty) == 1 and len(non_empty[0]) == 10

    def test_invalid_queue_count(self):
        with pytest.raises(ValueError):
            RSSIndirection(num_queues=0)


class TestCanaryAndPlacement:
    def _controller(self):
        from repro.core import NetworkFunction, NFManager, NFStatus

        env = Environment()
        manager = NFManager(env)
        for instance_id, name in ((0, "v1"), (1, "v2")):
            nf = NetworkFunction(env, name, service_id=3,
                                 instance_id=instance_id)
            manager.register(nf)
            nf.status = NFStatus.RUNNING
        return manager, CanaryController(manager, service_id=3)

    def test_ramp_schedule(self):
        manager, controller = self._controller()
        for share in (0.05, 0.25, 0.5):
            controller.set_canary_share(share)
            picks = [manager.lookup(3).instance_id for _ in range(400)]
            assert picks.count(1) / 400 == pytest.approx(share, abs=0.01)
        assert controller.history == [0.05, 0.25, 0.5]

    def test_promote_and_rollback(self):
        manager, controller = self._controller()
        controller.promote()
        assert manager.lookup(3).instance_id == 1
        controller.rollback()
        assert manager.lookup(3).instance_id == 0

    def test_invalid_share(self):
        _, controller = self._controller()
        with pytest.raises(ValueError):
            controller.set_canary_share(1.5)

    def test_placement_same_node_affinity(self):
        env = Environment()
        nodes = [NodeSpec(node_id=0, cores=12), NodeSpec(node_id=1, cores=12)]
        engine = PlacementEngine(nodes)
        units = [FiveGCUnit(env, unit_id=i) for i in range(4)]
        placed = [engine.place(unit) for unit in units]
        assert all(node is not None for node in placed)
        # 6 cores per unit -> two per 12-core node.
        assert sorted(engine.utilization().values()) == [1.0, 1.0]

    def test_placement_rejects_when_full(self):
        env = Environment()
        engine = PlacementEngine([NodeSpec(node_id=0, cores=6)])
        assert engine.place(FiveGCUnit(env, unit_id=0)) is not None
        assert engine.place(FiveGCUnit(env, unit_id=1)) is None

    def test_unit_file_prefixes_unique(self):
        env = Environment()
        a = FiveGCUnit(env, unit_id=1)
        b = FiveGCUnit(env, unit_id=2)
        assert a.file_prefix != b.file_prefix
