"""Tests for deployment: LB affinity, RSS, canary, placement."""

import struct

import pytest

from repro.deploy import (
    CanaryController,
    FiveGCUnit,
    NodeSpec,
    PlacementEngine,
    RSSIndirection,
    UEAwareLoadBalancer,
    UnitHandle,
    hash_five_tuple,
    toeplitz_hash,
    toeplitz_hash32,
)
from repro.net import FiveTuple, Packet
from repro.sim import Environment


def _ip(dotted):
    a, b, c, d = (int(part) for part in dotted.split("."))
    return (a << 24) | (b << 16) | (c << 8) | d


class TestLoadBalancer:
    def _lb(self, units=3, capacity=10):
        lb = UEAwareLoadBalancer()
        for unit_id in range(units):
            lb.add_unit(UnitHandle(unit_id=unit_id, capacity_sessions=capacity))
        return lb

    def test_balanced_assignment(self):
        lb = self._lb()
        for index in range(9):
            lb.assign(f"imsi-{index}")
        assert set(lb.distribution().values()) == {3}

    def test_affinity_stable(self):
        """§4: a UE session stays pinned to its 5GC unit."""
        lb = self._lb()
        first = lb.assign("imsi-A").unit_id
        for index in range(20):
            lb.assign(f"imsi-filler-{index}")
        assert lb.assign("imsi-A").unit_id == first
        # Affinity hits don't double-count sessions.
        assert sum(lb.distribution().values()) == 21

    def test_failed_unit_triggers_reassignment(self):
        lb = self._lb()
        unit = lb.assign("imsi-A").unit_id
        lb.mark_failed(unit)
        new_unit = lb.assign("imsi-A").unit_id
        assert new_unit != unit
        # And the new affinity is itself stable.
        assert lb.assign("imsi-A").unit_id == new_unit

    def test_capacity_exhaustion(self):
        lb = self._lb(units=1, capacity=2)
        assert lb.assign("imsi-1") is not None
        assert lb.assign("imsi-2") is not None
        assert lb.assign("imsi-3") is None
        assert lb.rejected == 1

    def test_release_frees_capacity(self):
        lb = self._lb(units=1, capacity=1)
        lb.assign("imsi-1")
        lb.release("imsi-1")
        assert lb.assign("imsi-2") is not None

    def test_duplicate_unit_rejected(self):
        lb = self._lb(units=1)
        with pytest.raises(ValueError):
            lb.add_unit(UnitHandle(unit_id=0))

    def test_unknown_release_is_counted_noop(self):
        """release() on a SUPI the LB never assigned must not raise and
        must not disturb the session counters."""
        lb = self._lb()
        lb.assign("imsi-A")
        before = lb.distribution()
        lb.release("imsi-never-assigned")
        assert lb.unknown_releases == 1
        assert lb.distribution() == before
        # Double release: the second one is the asymmetric case.
        lb.release("imsi-A")
        lb.release("imsi-A")
        assert lb.unknown_releases == 2
        assert sum(lb.distribution().values()) == 0

    def test_failover_then_release_does_not_underflow(self):
        """mark_failed re-homes the SUPI on the next assign; a release
        against the *old* unit must not double-decrement anything."""
        lb = self._lb()
        old_unit = lb.assign("imsi-A").unit_id
        lb.mark_failed(old_unit)
        new_unit = lb.assign("imsi-A").unit_id
        assert new_unit != old_unit
        assert lb.units[old_unit].sessions == 0
        lb.release("imsi-A")
        assert lb.units[new_unit].sessions == 0
        assert all(count >= 0 for count in lb.distribution().values())
        assert lb.unknown_releases == 0

    def test_failed_unit_sheds_counters_on_reassign(self):
        lb = self._lb(units=2, capacity=10)
        supis = [f"imsi-{index}" for index in range(6)]
        for supi in supis:
            lb.assign(supi)
        lb.mark_failed(0)
        for supi in supis:
            assert lb.assign(supi).unit_id == 1
        assert lb.units[0].sessions == 0
        assert lb.units[1].sessions == 6

    def test_pin_places_and_moves(self):
        lb = self._lb()
        assert lb.pin("seid-1", 2)
        assert lb.distribution()[2] == 1
        assert lb.pin("seid-1", 2)  # idempotent
        assert lb.distribution()[2] == 1
        assert lb.pin("seid-1", 0)  # re-pin moves the count
        assert lb.distribution() == {0: 1, 1: 0, 2: 0}
        assert lb.assignments == 2

    def test_pin_rejects_missing_full_or_failed_units(self):
        lb = self._lb(units=2, capacity=1)
        assert not lb.pin("seid-1", 9)  # no such unit
        lb.pin("seid-2", 0)
        assert not lb.pin("seid-3", 0)  # full
        lb.mark_failed(1)
        assert not lb.pin("seid-4", 1)  # unhealthy
        assert lb.rejected == 3
        assert "seid-3" not in lb.affinity


class TestToeplitzKnownAnswers:
    """Microsoft's RSS verification suite (the de-facto conformance
    vectors for the default key) — TCP/IPv4 and IPv4-only inputs."""

    TCP_VECTORS = [
        ("66.9.149.187", 2794, "161.142.100.80", 1766, 0x51CCC178),
        ("199.92.111.2", 14230, "65.69.140.83", 4739, 0xC626B0EA),
        ("24.19.198.95", 12898, "12.22.207.184", 38024, 0x5C2B394A),
        ("38.27.205.30", 48228, "209.142.163.6", 2217, 0xAFC7327F),
        ("153.39.163.191", 44251, "202.188.127.2", 1303, 0x10E828A2),
    ]

    @pytest.mark.parametrize(
        "src, sport, dst, dport, expected",
        TCP_VECTORS,
        ids=[vec[0] for vec in TCP_VECTORS],
    )
    def test_tcp_ipv4_vectors(self, src, sport, dst, dport, expected):
        flow = FiveTuple(
            src_ip=_ip(src), dst_ip=_ip(dst), src_port=sport, dst_port=dport
        )
        assert hash_five_tuple(flow) == expected

    def test_ipv4_only_vector(self):
        data = struct.pack("!II", _ip("66.9.149.187"), _ip("161.142.100.80"))
        assert toeplitz_hash(data) == 0x323E8FC2

    def test_hash32_matches_generic_toeplitz(self):
        """The byte-table fast form is bit-identical to the reference."""
        for value in (0, 1, 0x1000, 0xDEADBEEF, 0xFFFFFFFF, _ip("10.60.0.1")):
            assert toeplitz_hash32(value) == toeplitz_hash(
                struct.pack("!I", value)
            )

    def test_hash32_is_linear_over_gf2(self):
        """hash(a ^ b) == hash(a) ^ hash(b) — the property the sharded
        deployment's TEID steering stands on."""
        a, b = 0x12345678, 0x9ABCDEF0
        assert toeplitz_hash32(a ^ b) == (
            toeplitz_hash32(a) ^ toeplitz_hash32(b)
        )
        assert toeplitz_hash32(0) == 0


class TestRSS:
    def test_toeplitz_deterministic(self):
        data = b"\x0a\x00\x00\x01\x08\x08\x08\x08\x9c\x40\x01\xbb"
        assert toeplitz_hash(data) == toeplitz_hash(data)

    def test_toeplitz_key_too_short(self):
        with pytest.raises(ValueError):
            toeplitz_hash(b"x" * 64, key=b"short")

    def test_same_flow_same_queue(self):
        rss = RSSIndirection(num_queues=8)
        flow = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        assert rss.queue_for(flow) == rss.queue_for(flow)

    def test_flows_spread(self):
        rss = RSSIndirection(num_queues=4)
        queues = {
            rss.queue_for(
                FiveTuple(src_ip=index, dst_ip=index ^ 0xFFFF,
                          src_port=1000 + index, dst_port=443)
            )
            for index in range(200)
        }
        assert queues == {0, 1, 2, 3}

    def test_dispatch_preserves_flow_affinity(self):
        rss = RSSIndirection(num_queues=4)
        flow = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        packets = [Packet(flow=flow) for _ in range(10)]
        queues = rss.dispatch(packets)
        non_empty = [queue for queue in queues if queue]
        assert len(non_empty) == 1 and len(non_empty[0]) == 10

    def test_invalid_queue_count(self):
        with pytest.raises(ValueError):
            RSSIndirection(num_queues=0)

    def test_dispatch_is_a_partition(self):
        """Every packet lands in exactly one queue; nothing is lost or
        duplicated across the indirection table."""
        rss = RSSIndirection(num_queues=4)
        packets = [
            Packet(
                flow=FiveTuple(
                    src_ip=0x0A000000 + index,
                    dst_ip=0x08080808,
                    src_port=1024 + index,
                    dst_port=443,
                )
            )
            for index in range(300)
        ]
        queues = rss.dispatch(packets)
        assert len(queues) == 4
        assert sum(len(queue) for queue in queues) == len(packets)
        seen = [packet for queue in queues for packet in queue]
        assert {id(packet) for packet in seen} == {
            id(packet) for packet in packets
        }
        for index, queue in enumerate(queues):
            for packet in queue:
                assert rss.queue_for(packet.flow) == index

    def test_queue_for_word_matches_table(self):
        rss = RSSIndirection(num_queues=4)
        for value in (0, 0x1000, 0x0A3C0001, 0xFFFFFFFF):
            expected = rss.table[toeplitz_hash32(value) % len(rss.table)]
            assert rss.queue_for_word(value) == expected

    def test_queue_for_word_spreads(self):
        rss = RSSIndirection(num_queues=4)
        queues = {rss.queue_for_word(0x0A3C0000 + i) for i in range(200)}
        assert queues == {0, 1, 2, 3}


class TestCanaryAndPlacement:
    def _controller(self):
        from repro.core import NetworkFunction, NFManager, NFStatus

        env = Environment()
        manager = NFManager(env)
        for instance_id, name in ((0, "v1"), (1, "v2")):
            nf = NetworkFunction(env, name, service_id=3,
                                 instance_id=instance_id)
            manager.register(nf)
            nf.status = NFStatus.RUNNING
        return manager, CanaryController(manager, service_id=3)

    def test_ramp_schedule(self):
        manager, controller = self._controller()
        for share in (0.05, 0.25, 0.5):
            controller.set_canary_share(share)
            picks = [manager.lookup(3).instance_id for _ in range(400)]
            assert picks.count(1) / 400 == pytest.approx(share, abs=0.01)
        assert controller.history == [0.05, 0.25, 0.5]

    def test_promote_and_rollback(self):
        manager, controller = self._controller()
        controller.promote()
        assert manager.lookup(3).instance_id == 1
        controller.rollback()
        assert manager.lookup(3).instance_id == 0

    def test_invalid_share(self):
        _, controller = self._controller()
        with pytest.raises(ValueError):
            controller.set_canary_share(1.5)

    def test_placement_same_node_affinity(self):
        env = Environment()
        nodes = [NodeSpec(node_id=0, cores=12), NodeSpec(node_id=1, cores=12)]
        engine = PlacementEngine(nodes)
        units = [FiveGCUnit(env, unit_id=i) for i in range(4)]
        placed = [engine.place(unit) for unit in units]
        assert all(node is not None for node in placed)
        # 6 cores per unit -> two per 12-core node.
        assert sorted(engine.utilization().values()) == [1.0, 1.0]

    def test_placement_rejects_when_full(self):
        env = Environment()
        engine = PlacementEngine([NodeSpec(node_id=0, cores=6)])
        assert engine.place(FiveGCUnit(env, unit_id=0)) is not None
        assert engine.place(FiveGCUnit(env, unit_id=1)) is None

    def test_unit_file_prefixes_unique(self):
        env = Environment()
        a = FiveGCUnit(env, unit_id=1)
        b = FiveGCUnit(env, unit_id=2)
        assert a.file_prefix != b.file_prefix

    def test_node_fits_boundary(self):
        node = NodeSpec(node_id=0, cores=FiveGCUnit.CORES_REQUIRED)
        assert node.fits(FiveGCUnit.CORES_REQUIRED)
        assert not node.fits(FiveGCUnit.CORES_REQUIRED + 1)
        node.used_cores = 1
        assert not node.fits(FiveGCUnit.CORES_REQUIRED)

    def test_placement_prefers_most_free_node(self):
        env = Environment()
        nodes = [
            NodeSpec(node_id=0, cores=12, used_cores=6),
            NodeSpec(node_id=1, cores=12),
        ]
        engine = PlacementEngine(nodes)
        placed = engine.place(FiveGCUnit(env, unit_id=0))
        assert placed is not None and placed.node_id == 1

    def test_utilization_reflects_partial_fill(self):
        env = Environment()
        engine = PlacementEngine([NodeSpec(node_id=0, cores=12)])
        engine.place(FiveGCUnit(env, unit_id=0))
        assert engine.utilization() == {0: 0.5}

    def test_canary_share_of_zero_restores_stable(self):
        manager, controller = self._controller()
        controller.set_canary_share(0.0)
        picks = {manager.lookup(3).instance_id for _ in range(50)}
        assert picks == {0}
