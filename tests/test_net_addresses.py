"""Tests for IPv4 address utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    AddressAllocator,
    int_to_ip,
    ip_in_prefix,
    ip_to_int,
    prefix_mask,
    prefix_range,
)


class TestConversions:
    def test_known_values(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("0.0.0.0") == 0
        assert int_to_ip(0xC0A80101) == "192.168.1.1"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""]
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_out_of_range_int_raises(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestPrefixes:
    def test_mask_values(self):
        assert prefix_mask(0) == 0
        assert prefix_mask(8) == 0xFF000000
        assert prefix_mask(24) == 0xFFFFFF00
        assert prefix_mask(32) == 0xFFFFFFFF

    def test_mask_out_of_range(self):
        with pytest.raises(ValueError):
            prefix_mask(33)

    def test_range_of_slash24(self):
        low, high = prefix_range(ip_to_int("10.1.2.99"), 24)
        assert int_to_ip(low) == "10.1.2.0"
        assert int_to_ip(high) == "10.1.2.255"

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    )
    def test_address_always_within_own_prefix(self, address, length):
        assert ip_in_prefix(address, address, length)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=1, max_value=32),
    )
    def test_range_size_is_power_of_two(self, address, length):
        low, high = prefix_range(address, length)
        span = high - low + 1
        assert span == 1 << (32 - length)


class TestAllocator:
    def test_sequential_allocation(self):
        allocator = AddressAllocator("10.60.0.0", 16)
        first = allocator.allocate()
        second = allocator.allocate()
        assert int_to_ip(first) == "10.60.0.1"
        assert int_to_ip(second) == "10.60.0.2"
        assert allocator.in_use == 2

    def test_release_and_reuse(self):
        allocator = AddressAllocator("10.60.0.0", 16)
        first = allocator.allocate()
        allocator.allocate()
        allocator.release(first)
        assert allocator.allocate() == first

    def test_release_unallocated_raises(self):
        allocator = AddressAllocator("10.60.0.0", 16)
        with pytest.raises(ValueError):
            allocator.release(ip_to_int("10.60.0.1"))

    def test_exhaustion(self):
        allocator = AddressAllocator("10.0.0.0", 30)  # 2 usable hosts
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_iteration_sorted(self):
        allocator = AddressAllocator("10.60.0.0", 16)
        addresses = [allocator.allocate() for _ in range(3)]
        assert list(allocator) == sorted(addresses)
