"""Tests for the extended procedures: Xn handover, deregistration,
GTP end markers, and the scalability ablations."""

import pytest

from repro.cp import FiveGCore, HOState, ProcedureRunner, SystemConfig
from repro.experiments.scalability import (
    classifier_ablation,
    session_scale_sweep,
)
from repro.net import Direction, FiveTuple, Packet
from repro.ran import RMState
from repro.sim import Environment


def connected_ue(config=None):
    env = Environment()
    core = FiveGCore(env, config or SystemConfig.l25gc())
    runner = ProcedureRunner(core)
    ue = core.add_ue("imsi-208930000008001")
    detail = {}

    def setup():
        yield from runner.register_ue(ue, gnb_id=1)
        result = yield from runner.establish_session(ue)
        detail.update(result.detail)

    env.process(setup())
    env.run()
    return env, core, runner, ue, detail


class TestXnHandover:
    def test_moves_ue_and_path(self):
        env, core, runner, ue, detail = connected_ue()
        results = []

        def scenario():
            results.append(
                (yield from runner.xn_handover(ue, target_gnb_id=2))
            )

        env.process(scenario())
        env.run()
        assert ue.serving_gnb_id == 2
        sm = core.smf.context_for(ue.supi, 1)
        assert sm.gnb_address == core.gnbs[2].address
        # Data follows.
        core.inject_downlink(
            Packet(direction=Direction.DOWNLINK,
                   flow=FiveTuple(src_ip=1, dst_ip=detail["ue_ip"],
                                  src_port=80, dst_port=4000),
                   created_at=env.now)
        )
        env.run()
        assert core.gnbs[2].delivered == 1

    def test_far_fewer_core_messages_than_n2(self):
        """Xn preparation bypasses the core: only the path switch
        touches AMF/SMF/UPF."""
        env, core, runner, ue, _ = connected_ue()
        results = {}

        def scenario():
            results["xn"] = yield from runner.xn_handover(ue, 2)
            results["n2"] = yield from runner.handover(ue, 1)

        env.process(scenario())
        env.run()
        assert results["xn"].messages < results["n2"].messages / 3

    def test_direct_forwarding_no_loss(self):
        env, core, runner, ue, detail = connected_ue()

        def traffic():
            for seq in range(20):
                core.inject_downlink(
                    Packet(direction=Direction.DOWNLINK, seq=seq,
                           flow=FiveTuple(src_ip=1, dst_ip=detail["ue_ip"],
                                          src_port=80, dst_port=4000),
                           created_at=env.now)
                )
                yield env.timeout(0.01)

        def move():
            yield env.timeout(0.03)
            yield from runner.xn_handover(ue, 2)

        env.process(traffic())
        env.process(move())
        env.run()
        assert len(ue.received) == 20


class TestEndMarker:
    def test_end_marker_sent_to_source_gnb(self):
        env, core, runner, ue, _ = connected_ue()
        source = core.gnbs[1]
        markers = []
        original = source.receive_downlink

        def spy(packet, target_ue):
            if packet.meta.get("gtp_message") == "end-marker":
                markers.append(packet)
            original(packet, target_ue)

        source.receive_downlink = spy

        def scenario():
            yield from runner.handover(ue, target_gnb_id=2)

        env.process(scenario())
        env.run()
        assert len(markers) == 1
        assert markers[0].teid is not None


class TestDeregistration:
    def test_full_teardown(self):
        env, core, runner, ue, detail = connected_ue()

        def scenario():
            yield from runner.deregister_ue(ue)

        env.process(scenario())
        env.run()
        assert ue.rm_state is RMState.DEREGISTERED
        assert len(core.sessions) == 0
        assert core.ue_ip_pool.in_use == 0
        assert detail["dl_teid"] not in core.dl_routes
        assert not core.gnbs[1].is_connected(ue)

    def test_data_stops_after_deregistration(self):
        env, core, runner, ue, detail = connected_ue()

        def scenario():
            yield from runner.deregister_ue(ue)

        env.process(scenario())
        env.run()
        before = core.upf_u.stats.dropped_no_session
        core.inject_downlink(
            Packet(direction=Direction.DOWNLINK,
                   flow=FiveTuple(src_ip=1, dst_ip=detail["ue_ip"],
                                  src_port=80, dst_port=4000))
        )
        assert core.upf_u.stats.dropped_no_session == before + 1

    def test_released_ip_reused(self):
        env, core, runner, ue, detail = connected_ue()

        def scenario():
            yield from runner.deregister_ue(ue)
            fresh = core.add_ue("imsi-208930000008002")
            yield from runner.register_ue(fresh, gnb_id=1)
            result = yield from runner.establish_session(fresh)
            assert result.detail["ue_ip"] == detail["ue_ip"]

        env.process(scenario())
        env.run()


class TestScalability:
    def test_per_ue_latency_flat(self):
        """Control-plane events stay flat as session count grows —
        sessions are independent (the paper's limitation is in the
        implementation's session bookkeeping, not the architecture)."""
        rows = session_scale_sweep(
            SystemConfig.l25gc(), session_counts=(1, 5, 20)
        )
        registrations = [row.mean_registration_s for row in rows]
        assert max(registrations) < 1.05 * min(registrations)
        assert rows[-1].upf_sessions == 20

    def test_messages_scale_linearly(self):
        rows = session_scale_sweep(
            SystemConfig.l25gc(), session_counts=(2, 10)
        )
        per_ue = [row.control_messages / row.sessions for row in rows]
        assert per_ue[0] == per_ue[1]

    @pytest.mark.no_race
    def test_classifier_ablation_shape(self):
        """The in-UPF version of Fig 11: PS flat, LL linear, with the
        paper's ~20x advantage at 500 rules/session."""
        rows = classifier_ablation(
            rule_counts=(0, 98, 498), lookups=150
        )
        by_rules = {row.rules_per_session: row for row in rows}
        # At 2 rules, LL is competitive (within noise).
        assert by_rules[2].speedup() < 3.0
        # At 500, PartitionSort wins big.
        assert by_rules[500].speedup() > 8.0
        # PS lookup cost grows sub-linearly.
        ps_small = by_rules[2].lookup_us["PDR-PS"]
        ps_large = by_rules[500].lookup_us["PDR-PS"]
        assert ps_large < 10 * ps_small
