"""Tests for traffic generation and latency measurement."""

import math

import pytest

from repro.net import FiveTuple, Packet
from repro.sim import Environment
from repro.traffic import (
    ConstantRateGenerator,
    LatencySeries,
    percentile,
    summarize,
)


class TestGenerator:
    def test_rate_and_count(self):
        env = Environment()
        sink = []
        ConstantRateGenerator(
            env, sink.append, rate_pps=1000, flow=FiveTuple(), duration=0.1
        )
        env.run()
        assert len(sink) == 100
        assert sink[0].created_at == 0.0
        assert sink[1].created_at == pytest.approx(0.001)

    def test_sequence_numbers(self):
        env = Environment()
        sink = []
        ConstantRateGenerator(
            env, sink.append, rate_pps=100, flow=FiveTuple(), duration=0.05
        )
        env.run()
        assert [packet.seq for packet in sink] == list(range(5))

    def test_start_offset(self):
        env = Environment()
        sink = []
        ConstantRateGenerator(
            env, sink.append, rate_pps=100, flow=FiveTuple(),
            start=1.0, duration=0.02,
        )
        env.run()
        assert sink[0].created_at == pytest.approx(1.0)

    def test_stop(self):
        env = Environment()
        sink = []
        generator = ConstantRateGenerator(
            env, sink.append, rate_pps=100, flow=FiveTuple()
        )

        def stopper():
            yield env.timeout(0.05)
            generator.stop()

        env.process(stopper())
        env.run()
        assert 4 <= len(sink) <= 7

    def test_invalid_rate(self):
        env = Environment()
        with pytest.raises(ValueError):
            ConstantRateGenerator(env, lambda p: None, rate_pps=0,
                                  flow=FiveTuple())


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_extremes(self):
        values = [10, 20, 30]
        assert percentile(values, 0.0) == 10
        assert percentile(values, 1.0) == 30

    def test_interpolation(self):
        assert percentile([0, 10], 0.5) == pytest.approx(5)

    def test_empty_returns_nan(self):
        # Empty measurement windows are absent statistics, not crashes
        # (fig13/fig14 hit this with short runs).
        assert math.isnan(percentile([], 0.5))
        assert math.isnan(percentile((), 0.0))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestLatencySeries:
    def _series(self, latencies):
        series = LatencySeries()
        for index, latency in enumerate(latencies):
            packet = Packet(created_at=float(index),
                            delivered_at=index + latency)
            series.record_one_way(packet)
        return series

    def test_rtt_adds_return_path(self):
        series = self._series([0.001, 0.001, 0.050])
        # Return path = min one-way = 1 ms; the delayed packet's RTT is
        # its own one-way plus that.
        assert max(series.rtts) == pytest.approx(0.051)
        assert min(series.rtts) == pytest.approx(0.002)

    def test_timeline_sorted(self):
        series = LatencySeries()
        series.record(2.0, 0.01)
        series.record(1.0, 0.02)
        assert [t for t, _ in series.timeline()] == [1.0, 2.0]

    def test_window(self):
        series = self._series([0.001] * 10)
        assert len(series.window(0.0, 5.0)) == 5

    def test_missing_timestamp_raises(self):
        series = LatencySeries()
        with pytest.raises(ValueError):
            series.record_one_way(Packet())

    def test_empty_return_path_raises(self):
        with pytest.raises(ValueError):
            _ = LatencySeries().return_path


class TestSummary:
    def test_elevated_counting(self):
        series = LatencySeries()
        for index in range(90):
            series.record(float(index), 0.001)
        for index in range(90, 100):
            series.record(float(index), 0.1)
        summary = summarize(series)
        assert summary.count == 100
        assert summary.elevated_count == 10
        # RTT = one-way + steady return path (1 ms each).
        assert summary.base_rtt == pytest.approx(0.002, rel=0.1)
        assert summary.maximum == pytest.approx(0.101, rel=0.1)

    def test_as_dict_keys(self):
        series = LatencySeries()
        series.record(0.0, 0.001)
        assert set(summarize(series).as_dict()) == {
            "count", "mean", "p50", "p99", "max", "base_rtt", "elevated"
        }

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize(LatencySeries())
