"""Tests for the message-level bus."""

import pytest

from repro.core import Channel, DEFAULT_COSTS, MessageBus
from repro.sim import Environment


def make_bus(channel=Channel.SHARED_MEMORY):
    env = Environment()
    bus = MessageBus(env, DEFAULT_COSTS, default_channel=channel)
    return env, bus


class TestDelivery:
    def test_handler_invoked_with_message(self):
        env, bus = make_bus()
        received = []
        bus.register("amf", lambda message, b: received.append(message))
        bus.send("ran", "amf", "hello", name="Test")
        env.run()
        assert received == ["hello"]

    def test_done_event_fires_after_handler(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        done = bus.send("ran", "amf", "msg", handler_time=1e-3)
        env.run()
        assert done.triggered
        expected = DEFAULT_COSTS.message_cost(Channel.SHARED_MEMORY) + 1e-3
        assert env.now == pytest.approx(expected)

    def test_channel_costs_respected(self):
        results = {}
        for channel in (Channel.SHARED_MEMORY, Channel.HTTP_JSON):
            env, bus = make_bus(channel)
            bus.register("amf", lambda message, b: None)
            bus.send("ran", "amf", "msg", handler_time=0.0)
            env.run()
            results[channel] = env.now
        assert results[Channel.HTTP_JSON] > 10 * results[Channel.SHARED_MEMORY]

    def test_per_send_channel_override(self):
        env, bus = make_bus(Channel.SHARED_MEMORY)
        bus.register("upf", lambda message, b: None)
        bus.send(
            "smf", "upf", "pfcp", channel=Channel.UDP_PFCP, handler_time=0.0
        )
        env.run()
        assert env.now == pytest.approx(
            DEFAULT_COSTS.message_cost(Channel.UDP_PFCP)
        )

    def test_unknown_endpoint_counts_lost(self):
        env, bus = make_bus()
        done = bus.send("ran", "ghost", "msg")
        env.run()
        assert bus.lost == 1
        assert done.triggered and done.value is None

    def test_dead_endpoint_discards(self):
        env, bus = make_bus()
        received = []
        bus.register("amf", lambda message, b: received.append(message))
        bus.set_alive("amf", False)
        bus.send("ran", "amf", "msg")
        env.run()
        assert received == []
        assert bus.lost == 1

    def test_unknown_endpoint_recorded_in_drops(self):
        env, bus = make_bus()
        bus.send("ran", "ghost", "msg", name="Registration")
        env.run()
        assert len(bus.drops) == 1
        drop = bus.drops[0]
        assert drop.source == "ran"
        assert drop.destination == "ghost"
        assert drop.name == "Registration"
        assert drop.reason == "unknown-endpoint"
        assert drop.at > 0.0

    def test_dead_endpoint_drop_reason_distinguished(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        bus.set_alive("amf", False)
        bus.send("ran", "amf", "msg", name="ServiceRequest")
        bus.send("ran", "ghost", "msg", name="ServiceRequest")
        env.run()
        reasons = {d.destination: d.reason for d in bus.drops}
        assert reasons == {
            "amf": "endpoint-down",
            "ghost": "unknown-endpoint",
        }
        assert bus.lost == len(bus.drops) == 2

    def test_delivered_messages_not_in_drops(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        bus.send("ran", "amf", "msg")
        env.run()
        assert bus.drops == []
        assert bus.lost == 0

    def test_set_alive_unknown_raises(self):
        _env, bus = make_bus()
        with pytest.raises(KeyError):
            bus.set_alive("ghost", False)

    def test_handler_extra_time_recorded(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: 2e-3)
        bus.send("ran", "amf", "msg", handler_time=1e-3)
        env.run()
        record = bus.log[0]
        assert record.handler_time == pytest.approx(3e-3)


class TestMetricsView:
    def test_lost_is_a_view_over_the_drop_counter(self):
        """``bus.lost`` is derived from the metrics counter; both must
        always agree with the structured drop records."""
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        bus.set_alive("amf", False)
        bus.send("ran", "amf", "msg")
        bus.send("ran", "ghost", "msg")
        bus.send("ran", "ghost", "msg")
        env.run()
        assert bus.lost == len(bus.drops) == 3
        assert bus.metrics.get("bus.lost").value == bus.lost

    def test_delivered_counter_and_latency_histogram(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        bus.send("ran", "amf", "a", handler_time=0.0)
        bus.send("ran", "amf", "b", handler_time=0.0)
        env.run()
        assert bus.metrics.get("bus.delivered").value == 2
        histogram = bus.metrics.get("bus.message_latency")
        assert histogram.count == 2
        assert histogram.min == pytest.approx(
            DEFAULT_COSTS.message_cost(Channel.SHARED_MEMORY)
        )


class TestLog:
    def test_records_have_latency_fields(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        bus.send("ran", "amf", "msg", name="Registration", handler_time=1e-3)
        env.run()
        record = bus.log[0]
        assert record.name == "Registration"
        assert record.transport_latency == pytest.approx(
            DEFAULT_COSTS.message_cost(Channel.SHARED_MEMORY)
        )
        assert record.total_latency == pytest.approx(
            record.transport_latency + 1e-3
        )

    def test_records_named_filter(self):
        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        bus.send("ran", "amf", "a", name="A")
        bus.send("ran", "amf", "b", name="B")
        bus.send("ran", "amf", "c", name="A")
        env.run()
        assert len(bus.records_named("A")) == 2
        assert bus.total_messages() == 3

    def test_message_name_defaults_to_attribute(self):
        class Named:
            name = "FancyMessage"

        env, bus = make_bus()
        bus.register("amf", lambda message, b: None)
        bus.send("ran", "amf", Named())
        env.run()
        assert bus.log[0].name == "FancyMessage"
