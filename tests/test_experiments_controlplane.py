"""Shape tests for the control-plane experiments (Figs 6-9)."""

import pytest

from repro.experiments.fig06 import measure_serialization
from repro.experiments.fig07 import pfcp_message_latency
from repro.experiments.fig08 import event_completion_times
from repro.experiments.fig09 import average_speedup, communication_speedup


class TestFig06:
    @pytest.fixture(scope="class")
    def rows(self):
        return {
            row.format: row for row in measure_serialization(repeats=30)
        }

    def test_all_formats_present(self, rows):
        assert set(rows) == {"json", "protobuf", "flatbuffers",
                             "shm-descriptor"}

    def test_shared_memory_eliminates_everything(self, rows):
        shm = rows["shm-descriptor"]
        assert shm.protocol_s < 1e-5
        # Reference passing is orders below real serialization.
        assert shm.serialize_s < rows["json"].serialize_s / 10

    def test_flatbuffers_deserialize_near_zero(self, rows):
        flat = rows["flatbuffers"]
        assert flat.deserialize_s < flat.serialize_s / 2
        assert flat.deserialize_s < rows["json"].deserialize_s / 5

    def test_json_bulkiest_encoding(self, rows):
        """JSON's wire form is the largest (CPython's C-accelerated
        json module makes *decode timing* non-transferable from Go, so
        the size comparison carries the format-efficiency claim)."""
        assert rows["json"].encoded_bytes > rows["protobuf"].encoded_bytes

    def test_protocol_cost_remains_for_optimized_formats(self, rows):
        """Fig 6's punchline: serialization tweaks keep the kernel
        protocol cost; only shared memory removes it."""
        assert rows["flatbuffers"].protocol_s > 100e-6
        assert rows["protobuf"].protocol_s > 100e-6


class TestFig07:
    @pytest.fixture(scope="class")
    def rows(self):
        return pfcp_message_latency()

    def test_three_message_types(self, rows):
        assert {row.message for row in rows} == {
            "SessionEstablishment", "SessionModification", "SessionReport"
        }

    def test_reduction_in_paper_band(self, rows):
        """21-39 % latency reduction for every message type."""
        for row in rows:
            assert 0.21 <= row.reduction <= 0.40, row

    def test_l25gc_always_faster(self, rows):
        for row in rows:
            assert row.l25gc_s < row.free5gc_s

    def test_establishment_heaviest(self, rows):
        by_name = {row.message: row for row in rows}
        assert (
            by_name["SessionEstablishment"].free5gc_s
            > by_name["SessionReport"].free5gc_s
        )


class TestFig08:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row.event: row for row in event_completion_times()}

    def test_all_events(self, rows):
        assert set(rows) == {
            "registration", "session-request", "handover", "paging"
        }

    def test_l25gc_roughly_halves_everything(self, rows):
        for row in rows.values():
            assert 0.40 <= row.reduction <= 0.62, row.event

    def test_onvm_upf_marginal(self, rows):
        """Fig 8: ONVM-UPF alone gives only a slight improvement."""
        for row in rows.values():
            assert row.onvm_upf_s <= row.free5gc_s
            assert row.onvm_upf_s > 0.95 * row.free5gc_s

    def test_paging_anchor(self, rows):
        """Table 1: ~59 ms vs ~28 ms."""
        paging = rows["paging"]
        assert paging.free5gc_s == pytest.approx(59e-3, rel=0.15)
        assert paging.l25gc_s == pytest.approx(28e-3, rel=0.15)

    def test_handover_anchor(self, rows):
        """Table 2: ~227 ms vs ~130 ms."""
        handover = rows["handover"]
        assert handover.free5gc_s == pytest.approx(227e-3, rel=0.10)
        assert handover.l25gc_s == pytest.approx(130e-3, rel=0.10)

    def test_registration_is_largest(self, rows):
        assert rows["registration"].free5gc_s > rows["paging"].free5gc_s

    def test_two_users_no_perceptible_difference(self):
        """§5.2: 1 vs 2 concurrent users look the same."""
        one = {r.event: r.l25gc_s for r in event_completion_times(num_ues=1)}
        two = {r.event: r.l25gc_s for r in event_completion_times(num_ues=2)}
        for event in one:
            assert two[event] == pytest.approx(one[event], rel=0.10)


class TestFig09:
    @pytest.fixture(scope="class")
    def rows(self):
        return communication_speedup()

    def test_average_speedup_about_13x(self, rows):
        assert average_speedup(rows) == pytest.approx(13.0, rel=0.20)

    def test_every_message_speeds_up_substantially(self, rows):
        for row in rows:
            assert row.speedup > 8.0

    def test_sizes_from_real_encodings(self, rows):
        for row in rows:
            assert row.json_bytes > 100
