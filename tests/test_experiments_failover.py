"""Shape tests for the failover experiments (§5.5, Figs 15-17)."""

import pytest

from repro.experiments.fig15 import (
    control_plane_failover,
    data_plane_failover,
)
from repro.experiments.fig16 import failover_during_handover
from repro.experiments.fig17 import repeated_handovers
from repro.resiliency import reattach_time
from repro.tcpmodel import MIN_RTO


class TestControlPlaneFailover:
    @pytest.fixture(scope="class")
    def result(self):
        return control_plane_failover()

    def test_l25gc_failure_nearly_transparent(self, result):
        """§5.5.1: 134 ms with failure vs 130 ms without."""
        penalty = (
            result.l25gc_ho_with_failure_s
            - result.l25gc_ho_without_failure_s
        )
        assert 0.003 <= penalty <= 0.008  # a few milliseconds

    def test_reattach_around_400ms(self, result):
        assert result.reattach_ho_with_failure_s == pytest.approx(
            0.401, rel=0.10
        )

    def test_l25gc_vs_reattach_factor(self, result):
        assert (
            result.reattach_ho_with_failure_s
            > 2.5 * result.l25gc_ho_with_failure_s
        )

    def test_detection_under_half_ms(self, result):
        assert result.detection_s < 0.5e-3

    def test_reattach_time_derived_from_procedures(self):
        """~287 ms: free5GC registration + session + notification."""
        assert reattach_time() == pytest.approx(0.288, rel=0.10)


class TestDataPlaneFailover:
    @pytest.fixture(scope="class")
    def results(self):
        return data_plane_failover()

    def test_l25gc_loses_nothing(self, results):
        l25gc = results["l25gc"]
        assert l25gc.packets_lost == 0
        assert l25gc.packets_replayed > 0
        assert l25gc.retransmissions == 0

    def test_reattach_loses_inflight_packets(self, results):
        """§5.5.2: ~121 packets dropped at 10 Kpps over the outage in
        the paper's run; proportional to our reattach outage."""
        reattach = results["3gpp-reattach"]
        assert reattach.packets_lost > 1000  # 10 Kpps x ~290 ms
        assert reattach.retransmissions > 0

    def test_outage_magnitudes(self, results):
        assert results["l25gc"].outage_s < 0.010
        assert results["3gpp-reattach"].outage_s > 0.200

    def test_goodput_preserved_for_l25gc(self, results):
        l25gc = results["l25gc"]
        assert l25gc.goodput_during_bps > 0.7 * l25gc.goodput_before_bps
        reattach = results["3gpp-reattach"]
        assert reattach.goodput_during_bps < 0.7 * reattach.goodput_before_bps


class TestFailoverDuringHandover:
    @pytest.fixture(scope="class")
    def results(self):
        return failover_during_handover()

    def test_l25gc_stall_short(self, results):
        assert results["l25gc"].stall_s < MIN_RTO
        assert results["3gpp-reattach"].stall_s > MIN_RTO

    def test_l25gc_no_retransmissions(self, results):
        assert results["l25gc"].retransmissions == 0
        assert results["3gpp-reattach"].retransmissions > 0

    def test_goodput_recovers_better(self, results):
        l25gc = results["l25gc"]
        reattach = results["3gpp-reattach"]
        assert l25gc.goodput_after_bps > reattach.goodput_after_bps

    def test_more_data_transferred(self, results):
        assert (
            results["l25gc"].total_transferred_bytes
            > results["3gpp-reattach"].total_transferred_bytes
        )


class TestRepeatedHandovers:
    @pytest.fixture(scope="class")
    def results(self):
        return repeated_handovers(run_seconds=24.0)

    def test_free5gc_spurious_every_handover(self, results):
        free = results["free5gc"]
        # Every handover trips RTOs across the 10 connections.
        assert free.spurious_timeouts >= free.handovers

    def test_l25gc_clean(self, results):
        l25gc = results["l25gc"]
        assert l25gc.spurious_timeouts == 0
        assert l25gc.retransmissions == 0

    def test_transfer_gap_about_6_percent(self, results):
        """Appendix C: 442 MB vs 416 MB (~6 % more data for L25GC)."""
        l25gc = results["l25gc"].transferred_bytes
        free = results["free5gc"].transferred_bytes
        assert l25gc > free
        assert 0.02 <= (l25gc - free) / l25gc <= 0.25

    def test_rtx_per_handover_scale(self, results):
        """~60 spurious rtx per handover per connection in the paper;
        with 10 connections that is a few hundred per handover."""
        free = results["free5gc"]
        assert 100 <= free.rtx_per_handover <= 1500

    def test_max_rtt_straddles_rto(self, results):
        assert results["free5gc"].max_rtt_s > MIN_RTO
        assert results["l25gc"].max_rtt_s < MIN_RTO
