"""Tests for the pcap trace writer and network slicing."""

import io

import pytest

from repro.deploy import NetworkSlice, SliceManager, SNssai, UnitHandle
from repro.net import (
    FiveTuple,
    GTPUHeader,
    IPv4Header,
    Packet,
    PcapWriter,
    UDPHeader,
    read_pcap,
    write_gtp_trace,
)
from repro.net.gtp import GTPU_PORT


class TestPcap:
    def _packet(self, seq=0):
        return Packet(
            size=128,
            seq=seq,
            created_at=seq * 0.001,
            flow=FiveTuple(src_ip=0x0A3C0001, dst_ip=0x08080808,
                           src_port=40000, dst_port=443),
        )

    def test_roundtrip(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write_packet(self._packet(0))
        writer.write_packet(self._packet(1))
        buffer.seek(0)
        frames = read_pcap(buffer)
        assert len(frames) == 2
        assert frames[0][0] == pytest.approx(0.0)
        assert frames[1][0] == pytest.approx(0.001)

    def test_frames_parse_as_ethernet_ip(self):
        from repro.net import EthernetHeader

        buffer = io.BytesIO()
        PcapWriter(buffer).write_packet(self._packet())
        buffer.seek(0)
        ((_, frame),) = read_pcap(buffer)
        eth, rest = EthernetHeader.unpack(frame)
        ip, _ = IPv4Header.unpack(rest)
        assert ip.src == 0x0A3C0001

    def test_gtp_trace_has_gtp_headers(self):
        """The artifact's trace format: GTP-U/UDP/IP outer headers."""
        buffer = io.BytesIO()
        count = write_gtp_trace(
            buffer,
            [self._packet(i) for i in range(5)],
            teid=0xABC,
            upf_address=10,
            gnb_address=20,
        )
        assert count == 5
        buffer.seek(0)
        frames = read_pcap(buffer)
        from repro.net import EthernetHeader

        _eth, rest = EthernetHeader.unpack(frames[0][1])
        outer_ip, rest = IPv4Header.unpack(rest)
        assert (outer_ip.src, outer_ip.dst) == (10, 20)
        udp, rest = UDPHeader.unpack(rest)
        assert udp.dst_port == GTPU_PORT
        gtp, inner = GTPUHeader.unpack(rest)
        assert gtp.teid == 0xABC
        inner_ip, _ = IPv4Header.unpack(inner)
        assert inner_ip.dst == 0x08080808

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_pcap(io.BytesIO(b"\x00" * 24))

    def test_timestamp_microsecond_carry(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(0.9999999, b"x" * 20)
        buffer.seek(0)
        ((when, _),) = read_pcap(buffer)
        assert when == pytest.approx(1.0, abs=1e-6)


class TestSlicing:
    def _manager(self):
        manager = SliceManager()
        embb = manager.create_slice(SNssai(sst=1, sd="010203"))
        urllc = manager.create_slice(SNssai(sst=2, sd="000001"))
        for network_slice in (embb, urllc):
            for unit_id in range(2):
                network_slice.balancer.add_unit(
                    UnitHandle(unit_id=unit_id, capacity_sessions=10)
                )
        return manager, embb, urllc

    def test_service_id_blocks_disjoint(self):
        manager, embb, urllc = self._manager()
        assert manager.service_blocks_disjoint()
        embb_ids = {embb.service_id(i) for i in range(16)}
        urllc_ids = {urllc.service_id(i) for i in range(16)}
        assert embb_ids.isdisjoint(urllc_ids)

    def test_service_id_out_of_block(self):
        _, embb, _ = self._manager()
        with pytest.raises(ValueError):
            embb.service_id(16)

    def test_duplicate_slice_rejected(self):
        manager, _, _ = self._manager()
        with pytest.raises(ValueError):
            manager.create_slice(SNssai(sst=1, sd="010203"))

    def test_selection_uses_subscription(self):
        manager, embb, urllc = self._manager()
        manager.subscribe("imsi-1", embb.snssai)
        manager.subscribe("imsi-1", urllc.snssai)
        chosen, unit = manager.select("imsi-1")
        assert chosen is embb  # default = first subscribed
        assert unit is not None
        chosen, _ = manager.select("imsi-1", requested=urllc.snssai)
        assert chosen is urllc

    def test_unsubscribed_slice_rejected(self):
        manager, embb, urllc = self._manager()
        manager.subscribe("imsi-1", embb.snssai)
        with pytest.raises(PermissionError):
            manager.select("imsi-1", requested=urllc.snssai)

    def test_unknown_ue_rejected(self):
        manager, _, _ = self._manager()
        with pytest.raises(KeyError):
            manager.select("imsi-ghost")

    def test_slice_isolation_of_units(self):
        """UEs of different slices land on their own slice's units."""
        manager, embb, urllc = self._manager()
        manager.subscribe("imsi-e", embb.snssai)
        manager.subscribe("imsi-u", urllc.snssai)
        _, embb_unit = manager.select("imsi-e")
        _, urllc_unit = manager.select("imsi-u")
        assert embb.balancer.distribution()[embb_unit.unit_id] == 1
        assert urllc.balancer.distribution()[urllc_unit.unit_id] == 1
        # The other slice's balancer is untouched.
        assert sum(embb.balancer.distribution().values()) == 1
        assert sum(urllc.balancer.distribution().values()) == 1

    def test_subscription_idempotent(self):
        manager, embb, _ = self._manager()
        manager.subscribe("imsi-1", embb.snssai)
        manager.subscribe("imsi-1", embb.snssai)
        assert manager.subscribed("imsi-1") == [embb.snssai]
