"""Tests for the handover preparation-failure (admission control) path."""

import pytest

from repro.cp import FiveGCore, HOState, ProcedureRunner, SystemConfig
from repro.net import Direction, FiveTuple, Packet
from repro.sim import Environment


def connected_ue(config=None, target_max_ues=None):
    env = Environment()
    core = FiveGCore(env, config or SystemConfig.l25gc())
    core.gnbs[2].max_ues = target_max_ues
    runner = ProcedureRunner(core)
    ue = core.add_ue("imsi-208930000008101")
    detail = {}

    def setup():
        yield from runner.register_ue(ue, gnb_id=1)
        result = yield from runner.establish_session(ue)
        detail.update(result.detail)

    env.process(setup())
    env.run()
    return env, core, runner, ue, detail


class TestAdmissionControl:
    def test_can_admit_semantics(self):
        from repro.ran import GNodeB, UserEquipment

        env = Environment()
        gnb = GNodeB(env, gnb_id=9, address=1, max_ues=1)
        first, second = UserEquipment("imsi-a"), UserEquipment("imsi-b")
        assert gnb.can_admit(first)
        gnb.connect(first)
        assert gnb.can_admit(first)  # already connected
        assert not gnb.can_admit(second)

    def test_refused_handover_cancels(self):
        env, core, runner, ue, detail = connected_ue(target_max_ues=0)
        results = []

        def scenario():
            results.append((yield from runner.handover(ue, 2)))

        env.process(scenario())
        env.run()
        result = results[0]
        assert result.event == "handover-cancelled"
        assert result.detail["cause"] == "no-resources"
        # The UE never moved.
        assert ue.serving_gnb_id == 1
        assert core.gnbs[1].is_connected(ue)
        assert not core.gnbs[2].is_connected(ue)
        sm = core.smf.context_for(ue.supi, 1)
        assert sm.ho_state is HOState.NONE
        assert sm.gnb_address == core.gnbs[1].address

    def test_data_still_flows_after_cancel(self):
        env, core, runner, ue, detail = connected_ue(target_max_ues=0)

        def scenario():
            yield from runner.handover(ue, 2)

        env.process(scenario())
        env.run()
        core.inject_downlink(
            Packet(direction=Direction.DOWNLINK,
                   flow=FiveTuple(src_ip=1, dst_ip=detail["ue_ip"],
                                  src_port=80, dst_port=4000),
                   created_at=env.now)
        )
        env.run()
        assert core.gnbs[1].delivered == 1

    def test_buffered_packets_released_on_cancel(self):
        """Traffic buffered during the failed preparation is not lost."""
        env, core, runner, ue, detail = connected_ue(target_max_ues=0)

        def traffic():
            for seq in range(20):
                core.inject_downlink(
                    Packet(direction=Direction.DOWNLINK, seq=seq,
                           flow=FiveTuple(src_ip=1, dst_ip=detail["ue_ip"],
                                          src_port=80, dst_port=4000),
                           created_at=env.now)
                )
                yield env.timeout(0.002)

        def move():
            yield env.timeout(0.005)
            yield from runner.handover(ue, 2)

        env.process(traffic())
        env.process(move())
        env.run()
        assert len(ue.received) == 20
        received = [packet.seq for packet in ue.received]
        assert received == sorted(received)

    def test_retry_succeeds_after_capacity_frees(self):
        env, core, runner, ue, detail = connected_ue(target_max_ues=0)
        outcomes = []

        def scenario():
            outcomes.append((yield from runner.handover(ue, 2)))
            core.gnbs[2].max_ues = None  # capacity restored
            outcomes.append((yield from runner.handover(ue, 2)))

        env.process(scenario())
        env.run()
        assert outcomes[0].event == "handover-cancelled"
        assert outcomes[1].event == "handover"
        assert ue.serving_gnb_id == 2

    def test_cancel_cheaper_than_full_handover(self):
        env, core, runner, ue, _ = connected_ue(target_max_ues=0)
        outcomes = []

        def scenario():
            outcomes.append((yield from runner.handover(ue, 2)))

        env.process(scenario())
        env.run()
        # No radio sync happened: the cancel completes much faster.
        assert outcomes[0].duration < 0.06
