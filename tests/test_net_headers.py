"""Tests for the byte-level protocol header codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    internet_checksum,
)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 materials.
        data = bytes(
            [0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7]
        )
        assert internet_checksum(data) == 0x220D

    def test_checksum_of_data_plus_checksum_is_zero(self):
        data = b"some packet data!"
        checksum = internet_checksum(data)
        padded = data + b"\x00"  # odd length pads with zero
        combined = padded + checksum.to_bytes(2, "big")
        assert internet_checksum(combined) == 0

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF


class TestEthernet:
    def test_roundtrip(self):
        header = EthernetHeader(
            src="02:aa:bb:cc:dd:01", dst="02:aa:bb:cc:dd:02"
        )
        decoded, rest = EthernetHeader.unpack(header.pack() + b"payload")
        assert decoded.src == header.src
        assert decoded.dst == header.dst
        assert rest == b"payload"

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 5)

    def test_bad_mac_raises(self):
        with pytest.raises(ValueError):
            EthernetHeader(src="not-a-mac").pack()


class TestIPv4:
    def test_roundtrip(self):
        header = IPv4Header(
            src=0x0A000001,
            dst=0x0A000002,
            protocol=PROTO_UDP,
            total_length=40,
            ttl=61,
            dscp=10,
        )
        decoded, rest = IPv4Header.unpack(header.pack() + b"xx")
        assert decoded.src == header.src
        assert decoded.dst == header.dst
        assert decoded.protocol == PROTO_UDP
        assert decoded.ttl == 61
        assert decoded.dscp == 10
        assert rest == b"xx"

    def test_checksum_validated(self):
        raw = bytearray(IPv4Header(src=1, dst=2).pack())
        raw[8] ^= 0xFF  # corrupt the TTL
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(raw))

    def test_not_ipv4_raises(self):
        raw = bytearray(IPv4Header().pack())
        raw[0] = (6 << 4) | 5
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(raw))

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_roundtrip_random_addresses(self, src, dst):
        header = IPv4Header(src=src, dst=dst)
        decoded, _ = IPv4Header.unpack(header.pack())
        assert (decoded.src, decoded.dst) == (src, dst)


class TestUDP:
    def test_roundtrip(self):
        payload = b"hello world"
        header = UDPHeader(src_port=2152, dst_port=2152)
        raw = header.pack(payload, 1, 2) + payload
        decoded, rest = UDPHeader.unpack(raw)
        assert decoded.src_port == 2152
        assert decoded.length == 8 + len(payload)
        assert rest == payload

    def test_checksum_never_zero(self):
        # A computed zero checksum must be transmitted as 0xFFFF.
        header = UDPHeader(src_port=0, dst_port=0)
        raw = header.pack(b"", 0, 0)
        checksum = int.from_bytes(raw[6:8], "big")
        assert checksum != 0

    def test_truncated(self):
        with pytest.raises(ValueError):
            UDPHeader.unpack(b"\x00" * 4)


class TestTCP:
    def test_roundtrip(self):
        header = TCPHeader(
            src_port=443,
            dst_port=51000,
            seq=12345,
            ack=67890,
            flags=TCPHeader.FLAG_ACK | TCPHeader.FLAG_PSH,
            window=2048,
        )
        decoded, rest = TCPHeader.unpack(header.pack(b"abc", 9, 10) + b"abc")
        assert decoded.src_port == 443
        assert decoded.seq == 12345
        assert decoded.ack == 67890
        assert decoded.flags == TCPHeader.FLAG_ACK | TCPHeader.FLAG_PSH
        assert decoded.window == 2048
        assert rest == b"abc"

    def test_flag_constants_distinct(self):
        flags = {
            TCPHeader.FLAG_FIN,
            TCPHeader.FLAG_SYN,
            TCPHeader.FLAG_RST,
            TCPHeader.FLAG_PSH,
            TCPHeader.FLAG_ACK,
        }
        assert len(flags) == 5

    def test_truncated(self):
        with pytest.raises(ValueError):
            TCPHeader.unpack(b"\x00" * 10)
