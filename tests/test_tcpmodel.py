"""Tests for the TCP model and the page-load-time harness."""

import pytest

from repro.sim import MS, Environment
from repro.tcpmodel import (
    MIN_RTO,
    MSS,
    InterruptionKind,
    PageLoad,
    PathModel,
    Resource,
    TCPConnection,
    default_page,
)


def transfer(total_bytes, path=None, run_until=None, **path_kwargs):
    env = Environment()
    path = path or PathModel(**path_kwargs)
    connection = TCPConnection(env, path, total_bytes=total_bytes)
    env.process(connection.run())
    if run_until is None:
        env.run()
    else:
        env.run(until=run_until)
    return connection.stats


class TestPathModel:
    def test_share_divides_bandwidth(self):
        path = PathModel(bandwidth_bps=30e6, connections=6)
        assert path.share_bps == pytest.approx(5e6)

    def test_bdp(self):
        path = PathModel(bandwidth_bps=8e6, base_rtt=0.1, connections=1)
        assert path.bdp_bytes == pytest.approx(100_000)

    def test_queue_delay_zero_below_bdp(self):
        path = PathModel()
        assert path.queue_delay(path.bdp_bytes / 2) == 0.0

    def test_queue_delay_caps_at_capacity(self):
        path = PathModel()
        huge = path.queue_delay(path.bdp_bytes + 10 * path.queue_capacity_bytes)
        expected = 8 * path.queue_capacity_bytes / path.share_bps
        assert huge == pytest.approx(expected)

    def test_interruption_lookup(self):
        path = PathModel()
        path.add_interruption(start=1.0, duration=0.5)
        assert path.interruption_at(1.2) is not None
        assert path.interruption_at(0.9) is None
        assert path.interruption_at(1.5) is None  # end-exclusive


class TestTCPDynamics:
    def test_completes_and_accounts_all_bytes(self):
        stats = transfer(1 << 20)
        assert stats.completed_at is not None
        assert stats.bytes_acked == 1 << 20

    def test_throughput_near_line_rate(self):
        """A long transfer should achieve ~bottleneck bandwidth."""
        total = 15 << 20
        stats = transfer(total, bandwidth_bps=30e6, base_rtt=20 * MS)
        ideal = total * 8 / 30e6
        assert stats.completed_at < ideal * 1.25

    def test_slow_start_doubles(self):
        stats = transfer(4 << 20)
        cwnds = [cwnd for _t, cwnd in stats.cwnd_series[:3]]
        assert cwnds[1] == pytest.approx(cwnds[0] * 2)

    def test_no_retransmissions_on_clean_path(self):
        stats = transfer(4 << 20)
        assert stats.retransmissions == 0
        assert stats.spurious_timeouts == 0

    def test_short_stall_no_timeout(self):
        """A 96 ms stall stays under the 200 ms min RTO (L25GC)."""
        path = PathModel(bandwidth_bps=30e6, base_rtt=20 * MS)
        path.add_interruption(start=1.0, duration=0.096)
        stats = transfer(15 << 20, path=path)
        assert stats.spurious_timeouts == 0

    def test_long_stall_spurious_timeout(self):
        """A 463 ms stall exceeds the min RTO: spurious rtx + cwnd
        collapse, although no data was lost (free5GC's pathology)."""
        path = PathModel(bandwidth_bps=30e6, base_rtt=20 * MS)
        path.add_interruption(start=1.0, duration=0.463)
        stats = transfer(15 << 20, path=path)
        assert stats.spurious_timeouts >= 1
        assert stats.retransmissions > 0
        # cwnd collapsed to one segment at some point after the stall.
        assert any(cwnd == MSS for _t, cwnd in stats.cwnd_series)

    def test_dropped_interruption_forces_recovery(self):
        path = PathModel(bandwidth_bps=30e6, base_rtt=20 * MS)
        path.add_interruption(
            start=1.0, duration=0.4, kind=InterruptionKind.DROPPED
        )
        stats = transfer(15 << 20, path=path)
        assert stats.genuine_timeouts >= 1
        assert stats.bytes_acked == 15 << 20  # eventually recovers

    def test_rtt_series_reflects_stall(self):
        path = PathModel(bandwidth_bps=30e6, base_rtt=20 * MS)
        path.add_interruption(start=1.0, duration=0.15)
        stats = transfer(15 << 20, path=path)
        max_rtt = max(rtt for _t, rtt in stats.rtt_series)
        assert max_rtt > 0.15

    def test_min_rto_floor(self):
        env = Environment()
        connection = TCPConnection(env, PathModel(), total_bytes=1)
        assert connection.rto >= MIN_RTO

    def test_invalid_bytes(self):
        env = Environment()
        with pytest.raises(ValueError):
            TCPConnection(env, PathModel(), total_bytes=0)

    def test_goodput_windows(self):
        stats = transfer(8 << 20, bandwidth_bps=30e6, base_rtt=20 * MS)
        steady = stats.goodput_bps(0.5, stats.completed_at)
        assert steady > 15e6  # at least half the bottleneck

    def test_goodput_timeline_sums_to_total(self):
        stats = transfer(1 << 20)
        timeline = stats.goodput_timeline(bucket=0.1)
        total = sum(bps * 0.1 / 8 for _t, bps in timeline)
        assert total == pytest.approx(1 << 20, rel=0.01)

    def test_goodput_empty_window_raises(self):
        stats = transfer(1 << 20)
        with pytest.raises(ValueError):
            stats.goodput_bps(1.0, 1.0)


class TestPageLoad:
    def test_default_page_shape(self):
        page = default_page()
        images = [r for r in page if r.name.startswith("image")]
        assert len(images) == 6
        assert all(r.size_bytes == 15 << 20 for r in images)

    def test_page_load_completes(self):
        env = Environment()
        path = PathModel(bandwidth_bps=30e6, base_rtt=20 * MS)
        result = PageLoad(env, path).run()
        ideal = sum(r.size_bytes for r in default_page()) * 8 / 30e6
        assert result.plt >= ideal * 0.9
        assert result.plt <= ideal * 1.6
        assert result.bytes_transferred == sum(
            r.size_bytes for r in default_page()
        )

    def test_interruptions_slow_the_load(self):
        def plt(stall):
            env = Environment()
            path = PathModel(bandwidth_bps=30e6, base_rtt=20 * MS)
            for k in range(1, 20):
                path.add_interruption(start=2.0 * k, duration=stall)
            return PageLoad(env, path).run().plt

        assert plt(0.463) > plt(0.096)

    def test_small_resource_list(self):
        env = Environment()
        path = PathModel(bandwidth_bps=30e6, base_rtt=20 * MS)
        result = PageLoad(
            env, path, resources=[Resource("tiny.html", 1000)]
        ).run()
        assert result.plt < 1.0
