"""Tests for the ClassBench-style PDR generator."""

import pytest

from repro.classifier import (
    ClassBenchGenerator,
    PROFILE_BEST,
    PROFILE_MIXED,
    PROFILE_WORST,
)


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = ClassBenchGenerator(seed=5).rules(50)
        b = ClassBenchGenerator(seed=5).rules(50)
        assert [rule.ranges for rule in a] == [rule.ranges for rule in b]

    def test_different_seeds_differ(self):
        a = ClassBenchGenerator(seed=5).rules(50)
        b = ClassBenchGenerator(seed=6).rules(50)
        assert [rule.ranges for rule in a] != [rule.ranges for rule in b]

    def test_priorities_unique(self):
        rules = ClassBenchGenerator(seed=1).rules(200)
        priorities = [rule.priority for rule in rules]
        assert len(set(priorities)) == len(priorities)

    def test_rule_ids_sequential(self):
        rules = ClassBenchGenerator(seed=1).rules(10)
        assert [rule.rule_id for rule in rules] == list(range(1, 11))

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            ClassBenchGenerator(profile="chaotic")

    def test_invalid_template_count(self):
        with pytest.raises(ValueError):
            ClassBenchGenerator(num_templates=0)

    def test_all_ranges_prefix_expressible(self):
        """TSS requires prefix signatures for every profile."""
        for profile in (PROFILE_MIXED, PROFILE_BEST, PROFILE_WORST):
            rules = ClassBenchGenerator(seed=2, profile=profile).rules(100)
            for rule in rules:
                assert None not in rule.tuple_signature()

    def test_mixed_bounded_signatures(self):
        generator = ClassBenchGenerator(
            seed=3, profile=PROFILE_MIXED, num_templates=8
        )
        signatures = {
            rule.tuple_signature() for rule in generator.rules(400)
        }
        assert len(signatures) <= 8

    def test_best_single_signature(self):
        signatures = {
            rule.tuple_signature()
            for rule in ClassBenchGenerator(seed=3, profile=PROFILE_BEST).rules(64)
        }
        assert len(signatures) == 1

    def test_worst_all_distinct_signatures(self):
        rules = ClassBenchGenerator(seed=3, profile=PROFILE_WORST).rules(200)
        signatures = {rule.tuple_signature() for rule in rules}
        assert len(signatures) == 200


class TestTraces:
    def test_matching_keys_match(self):
        generator = ClassBenchGenerator(seed=4)
        rules = generator.rules(50)
        for key in generator.matching_keys(rules, 100):
            assert any(rule.matches(key) for rule in rules)

    def test_random_keys_shape(self):
        generator = ClassBenchGenerator(seed=4)
        keys = generator.random_keys(10)
        assert len(keys) == 10
        assert all(len(key) == 20 for key in keys)
