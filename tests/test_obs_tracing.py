"""Tests for repro.obs: spans, propagation, exporters, breakdowns.

Covers the PR's acceptance criteria: the Fig 6 serialize / protocol /
deserialize split is reproduced from a traced registration, the N2
handover yields a causally ordered span tree (buffering -> path switch
-> buffer drain), the Chrome-trace export validates, and tracing does
not perturb simulation results.
"""

import json
from dataclasses import replace

import pytest

from repro.core import Channel, DEFAULT_COSTS
from repro.cp.core5g import FiveGCore, SystemConfig
from repro.cp.procedures import ProcedureRunner
from repro.experiments.common import DataPlaneScenario
from repro.obs import (
    Tracer,
    chrome_trace,
    interface_breakdown,
    message_breakdowns,
    render_tree,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs import spans as obs_spans
from repro.sim import Environment


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test must leave the global switch off."""
    yield
    assert obs_spans.active() is None, "test leaked an active tracer"
    obs_spans.disable()


def run_lifecycle(system_factory, procedures=("register",)):
    """Run selected procedures on a fresh core under tracing."""
    env = Environment()
    core = FiveGCore(env, system_factory())
    runner = ProcedureRunner(core)
    with obs_spans.tracing(env) as tracer:
        ue = core.add_ue("imsi-208930000000001")

        def lifecycle():
            yield from runner.register_ue(ue, gnb_id=1)
            if "session" in procedures:
                yield from runner.establish_session(ue, pdu_session_id=1)
            if "handover" in procedures:
                yield from runner.handover(ue, target_gnb_id=2)

        env.process(lifecycle())
        env.run()
    return tracer, core


class TestTracerPrimitives:
    def _tracer(self):
        return Tracer(Environment())

    def test_stack_parenting(self):
        tracer = self._tracer()
        root = tracer.begin("root")
        child = tracer.begin("child")
        assert child.parent_id == root.span_id
        tracer.finish(child)
        tracer.finish(root)
        assert tracer.current is None
        assert tracer.roots() == [root]
        assert tracer.children(root) == [child]

    def test_pop_out_of_order_raises(self):
        tracer = self._tracer()
        root = tracer.begin("root")
        tracer.begin("child")
        with pytest.raises(RuntimeError):
            tracer.pop(root)

    def test_unfinished_span_zero_duration(self):
        tracer = self._tracer()
        span = tracer.start_span("open")
        assert not span.finished
        assert span.duration == 0.0

    def test_add_span_posthoc(self):
        tracer = self._tracer()
        span = tracer.add_span("radio", start=1.0, end=1.5, category="radio")
        assert span.finished
        assert span.duration == pytest.approx(0.5)

    def test_instant_is_zero_length(self):
        tracer = self._tracer()
        span = tracer.instant("marker", hit=True)
        assert span.start == span.end
        assert span.category == "instant"

    def test_context_side_table_does_not_mutate_objects(self):
        tracer = self._tracer()
        descriptor = object()
        span = tracer.start_span("message")
        tracer.attach(descriptor, span)
        assert tracer.context_of(descriptor) is span
        assert tracer.detach(descriptor) is span
        assert tracer.context_of(descriptor) is None

    def test_ring_hooks_emit_residency_span(self):
        env = Environment()
        tracer = Tracer(env)
        descriptor = object()
        parent = tracer.begin("procedure")
        tracer.on_ring_enqueue("rx", descriptor)
        env._now = 0.005  # advance the sim clock directly
        tracer.on_ring_dequeue("rx", descriptor)
        waits = tracer.find(category="ring")
        assert len(waits) == 1
        assert waits[0].name == "ring-wait:rx"
        assert waits[0].parent_id == parent.span_id
        assert waits[0].duration == pytest.approx(0.005)
        # The residency span becomes the descriptor's context.
        assert tracer.context_of(descriptor) is waits[0]
        tracer.finish(parent)

    def test_find_within_is_transitive(self):
        tracer = self._tracer()
        root = tracer.begin("root")
        child = tracer.begin("child")
        tracer.start_span("leaf", category="message")
        tracer.finish(child)
        tracer.finish(root)
        tracer.start_span("stray", category="message")
        found = tracer.find(category="message", within=root)
        assert [span.name for span in found] == ["leaf"]

    def test_enable_disable_switch(self):
        env = Environment()
        assert obs_spans.active() is None
        tracer = obs_spans.enable(env)
        assert obs_spans.active() is tracer
        assert obs_spans.disable() is tracer
        assert obs_spans.active() is None


class TestTracedDecorator:
    def test_untraced_returns_plain_generator(self):
        class Thing:
            @obs_spans.traced("op")
            def work(self):
                yield 1
                return "done"

        gen = Thing().work()
        assert next(gen) == 1

    def test_concurrent_procedures_do_not_cross_parent(self):
        env = Environment()

        class Proc:
            def __init__(self, tracer):
                self.tracer = tracer

            @obs_spans.traced("op")
            def work(self, delay):
                step = self.tracer.begin(f"step-{delay}")
                yield env.timeout(delay)
                self.tracer.finish(step)
                return delay

        with obs_spans.tracing(env) as tracer:
            proc = Proc(tracer)
            env.process(proc.work(0.010))
            env.process(proc.work(0.007))
            env.run()

        roots = tracer.roots()
        assert [root.name for root in roots] == ["op", "op"]
        for root in roots:
            children = tracer.children(root)
            assert len(children) == 1
            # Each step span is parented to its own procedure's root,
            # despite the two generators interleaving in the scheduler.
            assert children[0].duration == pytest.approx(
                0.010 if children[0].name == "step-0.01" else 0.007
            )

    def test_return_value_forwarded(self):
        env = Environment()

        class Proc:
            @obs_spans.traced("op")
            def work(self):
                yield env.timeout(0.001)
                return 42

        results = {}

        def driver():
            results["value"] = yield from Proc().work()

        with obs_spans.tracing(env) as tracer:
            env.process(driver())
            env.run()
        assert results["value"] == 42
        assert tracer.roots()[0].finished

    def test_exception_marks_root_errored(self):
        env = Environment()

        class Proc:
            @obs_spans.traced("op")
            def work(self):
                yield env.timeout(0.001)
                raise RuntimeError("boom")

        failures = []

        def driver():
            try:
                yield from Proc().work()
            except RuntimeError as exc:
                failures.append(exc)

        with obs_spans.tracing(env) as tracer:
            env.process(driver())
            env.run()
        assert failures
        root = tracer.roots()[0]
        assert root.finished
        assert root.attrs.get("error") is True


class TestFig6Breakdown:
    """Acceptance: the registration trace reproduces the paper's Fig 6
    serialize / protocol / deserialize split for SBI messages."""

    @pytest.fixture(scope="class")
    def traced_registration(self):
        tracer, _core = run_lifecycle(SystemConfig.free5gc)
        root = tracer.find(name="registration", category="procedure")[0]
        return tracer, root

    def test_sbi_message_components_match_cost_model(self, traced_registration):
        tracer, root = traced_registration
        rows = [
            row
            for row in message_breakdowns(tracer, within=root)
            if row.interface == "sbi" and row.channel == "http_json"
        ]
        assert rows, "registration produced no SBI message spans"
        channel = Channel.HTTP_JSON
        for row in rows:
            assert row.components["serialize"] == pytest.approx(
                DEFAULT_COSTS.serialize_cost(channel)
            )
            assert row.components["deserialize"] == pytest.approx(
                DEFAULT_COSTS.deserialize_cost(channel)
            )
            # serialize + protocol + deserialize is exactly the wire
            # time the bus charged for this message.
            assert row.components["protocol"] > 0
            assert row.transport == pytest.approx(
                row.total - row.components.get("handler", 0.0)
            )

    def test_shared_memory_skips_serialization(self):
        tracer, _core = run_lifecycle(SystemConfig.l25gc)
        root = tracer.find(name="registration", category="procedure")[0]
        rows = [
            row
            for row in message_breakdowns(tracer, within=root)
            if row.channel == "shared_memory"
        ]
        assert rows, "l25gc registration produced no shared-memory messages"
        for row in rows:
            # Zero-copy IPC: descriptors pass by reference (paper §3.1).
            assert row.components["serialize"] == 0.0
            assert row.components["deserialize"] == 0.0
            assert row.components["protocol"] > 0

    def test_interface_breakdown_accounts_for_procedure(self, traced_registration):
        tracer, root = traced_registration
        split = interface_breakdown(tracer, root)
        assert split["total"] == pytest.approx(root.duration)
        assert split["sbi"] > 0
        assert split["radio"] > 0
        assert split["other"] >= 0.0
        accounted = sum(
            value
            for key, value in split.items()
            if key not in ("total", "other")
        )
        assert accounted + split["other"] >= root.duration * 0.999


class TestHandoverSpanTree:
    """Acceptance: an N2 handover with buffered DL traffic yields the
    buffering -> path-switch -> drain causal chain in one trace."""

    @pytest.fixture(scope="class")
    def handover_trace(self):
        config = replace(SystemConfig.l25gc(), smart_handover_buffering=True)
        scenario = DataPlaneScenario(config, num_ues=1)
        scenario.setup()
        env = scenario.env
        info = scenario.sessions[0]
        tracer = obs_spans.enable(env)
        try:
            scenario.start_downlink(info, rate_pps=2000, duration=0.4)

            def do_handover():
                yield env.timeout(0.05)
                yield from scenario.runner.handover(
                    scenario.ue(info), target_gnb_id=2
                )

            env.process(do_handover())
            env.run()
        finally:
            obs_spans.disable()
        return tracer

    def test_root_and_steps_present(self, handover_trace):
        tracer = handover_trace
        roots = tracer.find(name="handover", category="procedure")
        assert len(roots) == 1
        root = roots[0]
        buffering = tracer.find(
            name="pfcp-session-modification-buffering", within=root
        )
        switch = tracer.find(name="pfcp-path-switch", within=root)
        drain = tracer.find(name="buffer-drain", within=root)
        assert len(buffering) == 1
        assert len(switch) == 1
        assert len(drain) == 1

    def test_causal_order_and_durations(self, handover_trace):
        tracer = handover_trace
        root = tracer.find(name="handover", category="procedure")[0]
        buffering = tracer.find(
            name="pfcp-session-modification-buffering", within=root
        )[0]
        switch = tracer.find(name="pfcp-path-switch", within=root)[0]
        drain = tracer.find(name="buffer-drain", within=root)[0]
        assert root.start <= buffering.start < switch.start <= drain.start
        assert buffering.duration > 0
        assert switch.duration > 0
        assert drain.duration > 0
        # The drain happens while the path-switch PFCP exchange is
        # being applied, so it nests under that step.
        assert drain.parent_id == switch.span_id

    def test_drain_released_buffered_packets(self, handover_trace):
        tracer = handover_trace
        drain = tracer.find(name="buffer-drain")[0]
        assert drain.attrs["released"] > 0

    def test_message_spans_carry_interfaces(self, handover_trace):
        tracer = handover_trace
        root = tracer.find(name="handover", category="procedure")[0]
        interfaces = {
            span.attrs.get("interface")
            for span in tracer.find(category="message", within=root)
        }
        assert {"n4", "ngap"} <= interfaces


class TestChromeTraceExport:
    def test_export_validates_cleanly(self, tmp_path):
        tracer, _core = run_lifecycle(
            SystemConfig.l25gc, procedures=("register", "session", "handover")
        )
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), tracer)
        assert validate_chrome_trace(doc) == []
        reloaded = json.loads(path.read_text())
        assert validate_chrome_trace(reloaded) == []
        assert len(reloaded["traceEvents"]) == len(doc["traceEvents"])

    def test_one_track_per_root(self):
        tracer, _core = run_lifecycle(
            SystemConfig.l25gc, procedures=("register", "session")
        )
        doc = chrome_trace(tracer)
        threads = [
            event
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        ]
        assert len(threads) == len(tracer.roots())

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace(42)
        assert validate_chrome_trace({"notTraceEvents": []})
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "name": "x", "ts": 0}]}
        )
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x", "ts": -1.0,
                              "pid": 1, "tid": 1, "dur": 1.0}]}
        )
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x", "ts": 0.0,
                              "pid": 1, "tid": 1}]}  # missing dur
        )

    def test_render_tree_mentions_key_spans(self):
        tracer, _core = run_lifecycle(SystemConfig.l25gc)
        root = tracer.find(name="registration")[0]
        text = render_tree(tracer, root)
        assert "registration [procedure]" in text
        assert "radio" in text
        assert "[message]" in text


class TestZeroPerturbation:
    """Acceptance: tracing changes nothing about simulated time."""

    def _timed_lifecycle(self, trace: bool):
        env = Environment()
        core = FiveGCore(env, SystemConfig.l25gc())
        runner = ProcedureRunner(core)
        durations = {}

        def lifecycle():
            ue = core.add_ue("imsi-208930000000001")
            for name, call in (
                ("registration", lambda: runner.register_ue(ue, gnb_id=1)),
                ("session-request",
                 lambda: runner.establish_session(ue, pdu_session_id=1)),
                ("handover", lambda: runner.handover(ue, target_gnb_id=2)),
                ("release-to-idle", lambda: runner.release_to_idle(ue)),
                ("paging", lambda: runner.page_ue(ue)),
            ):
                started = env.now
                yield from call()
                durations[name] = env.now - started

        if trace:
            with obs_spans.tracing(env) as tracer:
                env.process(lifecycle())
                env.run()
        else:
            tracer = None
            env.process(lifecycle())
            env.run()
        return durations, env.now, tracer

    def test_traced_run_is_bit_identical(self):
        plain, plain_end, _ = self._timed_lifecycle(trace=False)
        traced, traced_end, tracer = self._timed_lifecycle(trace=True)
        assert traced == plain  # exact float equality, not approx
        assert traced_end == plain_end
        # And the trace agrees with the stopwatch measurements.
        for name, duration in plain.items():
            root = tracer.find(name=name, category="procedure")[0]
            assert root.duration == pytest.approx(duration)

    def test_fig08_unchanged_after_traced_breakdown(self):
        from repro.experiments.fig08 import (
            event_completion_times,
            event_interface_breakdown,
        )

        before = {
            row.event: row.l25gc_s for row in event_completion_times()
        }
        breakdown = event_interface_breakdown()
        after = {
            row.event: row.l25gc_s for row in event_completion_times()
        }
        assert before == after
        # The traced run reproduces the same event durations.
        for event, duration in before.items():
            assert breakdown["l25gc"][event]["total"] == pytest.approx(
                duration, rel=1e-9
            )


class TestObsCLI:
    def test_chrome_trace_roundtrip(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace_path = tmp_path / "trace.json"
        assert main(["--procedure", "handover", "--no-breakdown",
                     "--chrome-trace", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "handover" in output
        assert trace_path.exists()
        assert main(["--validate", str(trace_path)]) == 0
        assert "valid trace-event JSON" in capsys.readouterr().out

    def test_metrics_dump(self, tmp_path):
        from repro.obs.__main__ import main

        metrics_path = tmp_path / "metrics.json"
        assert main(["--no-breakdown", "--metrics", str(metrics_path)]) == 0
        doc = json.loads(metrics_path.read_text())
        assert doc["bus.delivered"]["value"] > 0
        assert "upf_u.forwarded" in doc

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "?"}]}')
        assert main(["--validate", str(bad)]) == 1
        assert "bad or missing" in capsys.readouterr().err
