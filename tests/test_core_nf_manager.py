"""Tests for the NF abstraction and the NF manager."""

import pytest

from repro.core import (
    DEFAULT_COSTS,
    NetworkFunction,
    NFManager,
    NFStatus,
    PacketAction,
)
from repro.sim import MS, Environment


class CountingNF(NetworkFunction):
    """Forwards everything out of port 0, counting."""

    def handle(self, descriptor):
        descriptor.set_action(PacketAction.OUT, 0)
        return (descriptor,)


class ChainNF(NetworkFunction):
    """Forwards to another service id."""

    def __init__(self, *args, next_service: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.next_service = next_service

    def handle(self, descriptor):
        descriptor.set_action(PacketAction.TO_NF, self.next_service)
        return (descriptor,)


def build(env, nf_classes):
    manager = NFManager(env, pool_size=256)
    nfs = []
    for index, item in enumerate(nf_classes):
        cls, kwargs = item if isinstance(item, tuple) else (item, {})
        nf = cls(env, f"nf-{index}", service_id=index + 1, **kwargs)
        manager.register(nf)
        nf.start()
        nfs.append(nf)
    manager.start()
    return manager, nfs


class TestLifecycle:
    def test_start_twice_raises(self):
        env = Environment()
        nf = NetworkFunction(env, "nf", service_id=1)
        nf.start()
        with pytest.raises(RuntimeError):
            nf.start()

    def test_freeze_consumes_no_cpu(self):
        """A frozen NF must not poll: simulated time passes with zero
        heartbeats (the paper's zero-CPU standby claim)."""
        env = Environment()
        manager, (nf,) = build(env, [CountingNF])
        env.run(until=1 * MS)
        nf.freeze()
        beats_at_freeze = nf.heartbeat
        env.run(until=100 * MS)
        assert nf.heartbeat == beats_at_freeze

    def test_unfreeze_resumes(self):
        env = Environment()
        manager, (nf,) = build(env, [CountingNF])
        env.run(until=1 * MS)
        nf.freeze()
        env.run(until=2 * MS)
        nf.unfreeze()
        manager.inject("pkt", service_id=1)
        env.run(until=4 * MS)
        assert nf.handled == 1

    def test_unfreeze_not_frozen_raises(self):
        env = Environment()
        nf = NetworkFunction(env, "nf", service_id=1)
        with pytest.raises(RuntimeError):
            nf.unfreeze()

    def test_failed_nf_stops_processing(self):
        env = Environment()
        manager, (nf,) = build(env, [CountingNF])
        env.run(until=1 * MS)
        nf.fail()
        assert not nf.is_alive
        manager.inject("pkt", service_id=1)
        env.run(until=5 * MS)
        assert nf.handled == 0


class TestRouting:
    def test_inject_and_transmit(self):
        env = Environment()
        manager, (nf,) = build(env, [CountingNF])
        for index in range(10):
            assert manager.inject(f"pkt-{index}", service_id=1)
        env.run(until=10 * MS)
        assert nf.handled == 10
        assert manager.transmitted == 10
        assert len(manager.ports[0]) == 10
        assert manager.pool.in_use == 0  # all descriptors returned

    def test_chain_between_nfs(self):
        env = Environment()
        manager, nfs = build(
            env, [(ChainNF, {"next_service": 2}), CountingNF]
        )
        manager.inject("pkt", service_id=1)
        env.run(until=10 * MS)
        assert nfs[0].handled == 1
        assert nfs[1].handled == 1
        assert manager.routed == 1
        assert manager.transmitted == 1

    def test_inject_unknown_service_drops(self):
        env = Environment()
        manager, _ = build(env, [CountingNF])
        assert not manager.inject("pkt", service_id=99)
        assert manager.dropped == 1

    def test_route_to_dead_service_drops(self):
        env = Environment()
        manager, nfs = build(
            env, [(ChainNF, {"next_service": 2}), CountingNF]
        )
        nfs[1].fail()
        manager.inject("pkt", service_id=1)
        env.run(until=10 * MS)
        assert manager.dropped >= 1
        assert manager.pool.in_use == 0

    def test_stats_shape(self):
        env = Environment()
        manager, _ = build(env, [CountingNF])
        stats = manager.stats()
        assert set(stats) == {
            "routed", "transmitted", "dropped", "pool_in_use", "nfs"
        }


class TestCanary:
    def _running_pair(self, env):
        manager = NFManager(env)
        stable = NetworkFunction(env, "svc-v1", service_id=1, instance_id=0)
        canary = NetworkFunction(env, "svc-v2", service_id=1, instance_id=1)
        for nf in (stable, canary):
            manager.register(nf)
            nf.status = NFStatus.RUNNING
        return manager, stable, canary

    def test_default_all_to_first(self):
        env = Environment()
        manager, stable, _ = self._running_pair(env)
        picks = {manager.lookup(1).instance_id for _ in range(20)}
        assert picks == {0}

    @pytest.mark.parametrize("share", [0.1, 0.25, 0.5, 0.9])
    def test_weighted_split_exact(self, share):
        env = Environment()
        manager, _, _ = self._running_pair(env)
        manager.set_canary_weights(1, {0: 1 - share, 1: share})
        picks = [manager.lookup(1).instance_id for _ in range(1000)]
        assert picks.count(1) / 1000 == pytest.approx(share, abs=0.01)

    def test_negative_weight_rejected(self):
        env = Environment()
        manager, _, _ = self._running_pair(env)
        with pytest.raises(ValueError):
            manager.set_canary_weights(1, {0: -1.0})

    def test_unknown_service_rejected(self):
        env = Environment()
        manager, _, _ = self._running_pair(env)
        with pytest.raises(KeyError):
            manager.set_canary_weights(9, {0: 1.0})

    def test_failed_canary_falls_back(self):
        env = Environment()
        manager, stable, canary = self._running_pair(env)
        manager.set_canary_weights(1, {0: 0.0, 1: 1.0})
        assert manager.lookup(1) is canary
        canary.fail()
        assert manager.lookup(1) is stable


class TestFailureDetection:
    def test_listener_notified_within_milliseconds(self):
        env = Environment()
        manager, (nf,) = build(env, [CountingNF])
        detections = []
        manager.failure_listeners.append(
            lambda failed: detections.append((failed.name, env.now))
        )
        env.run(until=10 * MS)
        nf.fail()
        failed_at = env.now
        env.run(until=failed_at + 20 * MS)
        assert len(detections) == 1
        name, when = detections[0]
        assert name == "nf-0"
        assert when - failed_at <= 5 * MS
