"""Hot/cold session-state split: slab unit tests + equivalence property.

The invariant that matters: **resolving the per-packet decision through
the compact hot slab is observationally identical to resolving it
through the cold-object delegation surface** — same per-packet
outcomes, bit-identical :class:`ForwardingStats`, identical URR byte
counts, identical flow-cache contents and counters — over any
interleaving of packets, session churn, and rule mutations, both
sequential and burst.  The property test replays randomized op scripts
against the production stack and a cold-path oracle stack whose only
difference is ``_lookup_hot`` going table -> ``UPFSession`` -> ``.hot``
instead of probing the slab.

The unit tests pin the slab mechanics individually: dense-index
assignment, free-list recycling, duplicate-key rejection before any
mutation, churn accounting, and the gauge surface.  The race tests
assert the split preserved the pre-split ownership semantics (UPF-C
owns membership and rules, UPF-U reads them on the data path).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import races
from repro.classifier import LinearClassifier, PartitionSortClassifier
from repro.obs.metrics import MetricsRegistry
from repro.sim import Environment
from repro.up import (
    FAR,
    FARAction,
    RuleEpoch,
    SessionTable,
    UPFSession,
    UPFUserPlane,
)
from repro.up.hot_store import UNSLABBED, HotSessionRecord, HotSessionStore

from .test_up_flow_cache import UE_BASE, dl_packet, make_session, ul_packet


def _record(seid, classifier_class=LinearClassifier):
    return HotSessionRecord(
        seid=seid,
        ue_ip=UE_BASE + seid,
        ul_teid=0x100 + seid,
        classifier=classifier_class(),
        epoch=RuleEpoch(),
    )


# ----------------------------------------------------------------------
# HotSessionStore slab mechanics
# ----------------------------------------------------------------------
class TestHotSessionStore:
    def test_adopt_assigns_dense_indices(self):
        store = HotSessionStore()
        records = [_record(seid) for seid in (1, 2, 3)]
        assert [store.adopt(r) for r in records] == [0, 1, 2]
        assert [r.index for r in records] == [0, 1, 2]
        assert len(store) == store.slab_size == 3
        for record in records:
            assert store.by_teid(record.ul_teid) is record
            assert store.by_ue_ip(record.ue_ip) is record
            assert store.by_index(record.index) is record

    def test_release_recycles_through_free_list(self):
        store = HotSessionStore()
        records = [_record(seid) for seid in (1, 2, 3)]
        for record in records:
            store.adopt(record)
        store.release(records[1])
        assert records[1].index == UNSLABBED
        assert store.by_teid(records[1].ul_teid) is None
        assert store.by_ue_ip(records[1].ue_ip) is None
        assert len(store) == 2 and store.slab_size == 3
        # The freed middle slot is reused — the slab stays dense.
        replacement = _record(4)
        assert store.adopt(replacement) == 1
        assert store.slab_size == 3
        assert store.by_index(1) is replacement

    def test_duplicate_keys_rejected_before_any_mutation(self):
        store = HotSessionStore()
        store.adopt(_record(1))
        same_teid = _record(2)
        same_teid.ul_teid = 0x101
        with pytest.raises(ValueError, match="duplicate UL TEID"):
            store.adopt(same_teid)
        same_ip = _record(3)
        same_ip.ue_ip = UE_BASE + 1
        with pytest.raises(ValueError, match="duplicate UE IP"):
            store.adopt(same_ip)
        # Nothing leaked from the rejected adopts.
        assert same_teid.index == same_ip.index == UNSLABBED
        assert len(store) == store.slab_size == 1
        assert store.adopted == 1

    def test_double_adopt_and_foreign_release_rejected(self):
        store = HotSessionStore()
        record = _record(1)
        store.adopt(record)
        with pytest.raises(ValueError, match="already slabbed"):
            store.adopt(record)
        stranger = _record(2)
        with pytest.raises(ValueError, match="not resident"):
            store.release(stranger)
        other = HotSessionStore()
        resident_elsewhere = _record(3)
        other.adopt(resident_elsewhere)
        with pytest.raises(ValueError, match="not resident"):
            store.release(resident_elsewhere)

    def test_churn_accounting_and_peak(self):
        store = HotSessionStore()
        records = [_record(seid) for seid in (1, 2, 3)]
        for record in records:
            store.adopt(record)
        for record in records[:2]:
            store.release(record)
        store.adopt(_record(4))
        assert (store.adopted, store.released) == (4, 2)
        assert store.peak_live == 3
        assert len(store) == 2
        assert [r.seid for r in store.records()] == [4, 3]

    def test_register_into_exports_live_gauges(self):
        store = HotSessionStore()
        registry = MetricsRegistry()
        store.register_into(registry)
        record = _record(1)
        store.adopt(record)
        store.adopt(_record(2))
        store.release(record)
        assert registry.gauge("hot_store.live").value == 1
        assert registry.gauge("hot_store.slab_size").value == 2
        assert registry.gauge("hot_store.peak_live").value == 2
        assert registry.gauge("hot_store.adopted").value == 2
        assert registry.gauge("hot_store.released").value == 1


# ----------------------------------------------------------------------
# SessionTable <-> slab integration and the delegation surface
# ----------------------------------------------------------------------
class TestSessionTableSlab:
    def test_add_adopts_and_remove_releases(self):
        table = SessionTable()
        session = make_session(1, LinearClassifier)
        table.add(session)
        assert session.hot.index != UNSLABBED
        assert table.hot_store.by_teid(session.ul_teid) is session.hot
        assert table.by_teid(session.ul_teid) is session
        assert table.by_ue_ip(session.ue_ip) is session
        table.remove(1)
        assert session.hot.index == UNSLABBED
        assert table.by_teid(session.ul_teid) is None
        assert len(table.hot_store) == 0

    def test_duplicate_add_leaves_table_and_slab_unchanged(self):
        table = SessionTable()
        table.add(make_session(1, LinearClassifier))
        with pytest.raises(ValueError, match="duplicate SEID"):
            table.add(make_session(1, LinearClassifier))
        clash = UPFSession(seid=2, ue_ip=UE_BASE + 1, ul_teid=0x999)
        with pytest.raises(ValueError, match="duplicate UE IP"):
            table.add(clash)
        assert table.by_seid(2) is None
        assert len(table.hot_store) == 1

    def test_hot_record_shares_rule_state_with_cold_session(self):
        """The delegation properties and the hot record read the same
        underlying containers — rule installs are visible to both."""
        session = make_session(1, LinearClassifier, qer=True, urr=True)
        assert session.pdrs is session.hot.pdrs
        assert session.fars is session.hot.fars
        assert session.qer_enforcers is session.hot.qer_enforcers
        assert session.usage_counters is session.hot.usage_counters
        assert session.classifier is session.hot.classifier
        assert session.epoch is session.hot.epoch
        session.update_far(FAR(far_id=9, action=FARAction(drop=True)))
        assert session.hot.fars[9] is session.fars[9]

    def test_install_rebinds_epoch_on_hot_record(self):
        table = SessionTable()
        session = make_session(1, LinearClassifier)
        assert session.epoch is not table.epoch
        table.add(session)
        assert session.hot.epoch is table.epoch
        assert session.epoch is table.epoch

    def test_match_pdr_equivalent_through_both_surfaces(self):
        session = make_session(1, LinearClassifier)
        packet = ul_packet(1)
        assert session.match_pdr(packet) is session.hot.match_pdr(packet)
        assert session.match_pdr(packet).pdr_id == 1


# ----------------------------------------------------------------------
# Ownership: the split preserves pre-split race semantics
# ----------------------------------------------------------------------
class TestSlabRaceSemantics:
    def test_membership_and_data_path_roles_are_clean(self):
        with races.traced() as det:
            table = SessionTable()
            upf = UPFUserPlane(Environment(), table, flow_cache=True)
            with det.role("upf-c"):
                for seid in (1, 2):
                    table.add(make_session(seid, LinearClassifier))
            with det.role("upf-u"):
                assert upf.process(ul_packet(1)) == "forwarded-ul"
                assert upf.process(dl_packet(2)) == "forwarded-dl"
                assert upf.process(ul_packet(1)) == "forwarded-ul"  # hit
            with det.role("upf-c"):
                table.remove(1)
        assert det.violations == [], det.report()

    def test_upf_u_adding_membership_is_flagged(self):
        """Slab membership is UPF-C-owned state; a data-plane role
        mutating it must still trip the detector after the split."""
        with races.traced() as det:
            table = SessionTable()
            with det.role("upf-u"):
                table.add(make_session(1, LinearClassifier))
        assert any(v.kind == "non-owner-write" for v in det.violations)


# ----------------------------------------------------------------------
# Property: slab resolution == cold-object resolution
# ----------------------------------------------------------------------
class ColdPathUPF(UPFUserPlane):
    """The oracle: identical pipeline, but the session lookup resolves
    through the cold delegation surface (table probe -> ``UPFSession``
    -> ``.hot``) instead of probing the slab directly.  Any divergence
    between the two lookups — a stale index map, a record the table
    knows but the slab lost, mismatched rule containers — surfaces as
    an observable difference downstream."""

    def _lookup_hot(self, packet):
        session = self._lookup_session(packet)
        if session is None:
            return None
        return session.hot


SEIDS = (1, 2, 3)

_hot_ops = st.lists(
    st.one_of(
        st.tuples(st.just("ul"), st.sampled_from(SEIDS), st.integers(1, 3)),
        st.tuples(st.just("dl"), st.sampled_from(SEIDS), st.integers(1, 3)),
        st.tuples(st.just("add"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("del"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("buffer-far"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("forward-far"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("drop-pdr"), st.sampled_from(SEIDS), st.just(0)),
        st.tuples(st.just("flush"), st.sampled_from(SEIDS), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


def _mutate(op, seid, table, upf):
    session = table.by_seid(seid)
    if op == "add":
        if session is None:
            table.add(
                make_session(seid, PartitionSortClassifier, qer=True,
                             urr=True)
            )
    elif op == "del":
        table.remove(seid)
    elif op == "buffer-far" and session is not None:
        session.update_far(
            FAR(
                far_id=2,
                action=FARAction(forward=False, buffer=True, notify_cp=True),
            )
        )
    elif op == "forward-far" and session is not None:
        session.update_far(FAR(far_id=2, action=FARAction(forward=True)))
    elif op == "drop-pdr" and session is not None:
        if 2 in session.pdrs:
            session.remove_pdr(2)
        else:
            fresh = make_session(seid, PartitionSortClassifier)
            session.install_pdr(fresh.pdrs[2])
    elif op == "flush" and session is not None:
        upf.flush_session(session)


def _packets_for(run, teidless_variant=3):
    out = []
    for op, seid, variant in run:
        if op == "ul":
            packet = ul_packet(seid, src_port=4000 + variant)
            if variant == teidless_variant:
                packet.teid = None  # exercise the no-session lane
            out.append(packet)
        else:
            out.append(dl_packet(seid, src_port=80 + variant))
    return out


def _replay(ops, flow_cache, burst_limits=None):
    """Drive the production stack and the cold-path oracle in lockstep.

    ``burst_limits`` arms burst mode: packet runs go through
    ``process_burst`` on both stacks (partitioned identically), so the
    slab's bulk-probe lane is held to the same oracle."""

    def build(upf_class):
        table = SessionTable()
        upf = upf_class(
            Environment(), table, flow_cache=flow_cache,
            flow_cache_capacity=8,  # tiny: exercise LRU eviction too
        )
        return table, upf

    hot_table, hot_upf = build(UPFUserPlane)
    cold_table, cold_upf = build(ColdPathUPF)
    hot_out, cold_out = [], []
    i = 0
    limits = iter(burst_limits or ())
    while i < len(ops):
        op = ops[i][0]
        if op in ("ul", "dl"):
            run = [ops[i]]
            i += 1
            if burst_limits is not None:
                limit = next(limits, 4)
                while (i < len(ops) and ops[i][0] in ("ul", "dl")
                       and len(run) < limit):
                    run.append(ops[i])
                    i += 1
                hot_out.extend(hot_upf.process_burst(_packets_for(run)))
                cold_out.extend(cold_upf.process_burst(_packets_for(run)))
            else:
                for packet in _packets_for(run):
                    hot_out.append(hot_upf.process(packet))
                for packet in _packets_for(run):
                    cold_out.append(cold_upf.process(packet))
        else:
            _mutate(ops[i][0], ops[i][1], hot_table, hot_upf)
            _mutate(ops[i][0], ops[i][1], cold_table, cold_upf)
            i += 1
    assert hot_out == cold_out
    assert hot_upf.stats == cold_upf.stats  # bit-identical dataclass
    for seid in SEIDS:
        hot_session = hot_table.by_seid(seid)
        cold_session = cold_table.by_seid(seid)
        assert (hot_session is None) == (cold_session is None)
        if hot_session is not None:
            # The slab and the table agree on membership...
            record = hot_table.hot_store.by_teid(hot_session.ul_teid)
            assert record is hot_session.hot
            # ...and URR accounting (cold state) matched the oracle.
            if 1 in hot_session.usage_counters:
                for attr in ("uplink_bytes", "downlink_bytes"):
                    assert (
                        getattr(hot_session.usage_counters[1], attr)
                        == getattr(cold_session.usage_counters[1], attr)
                    ), attr
            assert len(hot_session.buffer) == len(cold_session.buffer)
    if flow_cache:
        hc, cc = hot_upf.flow_cache, cold_upf.flow_cache
        assert list(hc._entries) == list(cc._entries)
        for name in ("hits", "misses", "stale", "inserts", "evictions",
                     "purged"):
            assert getattr(hc, name) == getattr(cc, name), name
    # Slab invariants hold after arbitrary churn.
    store = hot_table.hot_store
    assert len(store) == sum(
        1 for seid in SEIDS if hot_table.by_seid(seid) is not None
    )
    for record in store.records():
        assert store.by_index(record.index) is record


@settings(max_examples=60, deadline=None)
@given(_hot_ops)
def test_slab_equals_cold_path_sequential(ops):
    _replay(ops, flow_cache=True)


@settings(max_examples=30, deadline=None)
@given(_hot_ops)
def test_slab_equals_cold_path_cache_off(ops):
    _replay(ops, flow_cache=False)


@settings(max_examples=60, deadline=None)
@given(_hot_ops, st.lists(st.integers(1, 9), max_size=30))
def test_slab_equals_cold_path_burst(ops, burst_limits):
    _replay(ops, flow_cache=True, burst_limits=burst_limits)
