"""The UPF-U running as a real NF on the shared-memory platform.

Everything else drives the UPF through its direct API; this exercises
the ONVM-style path: packets injected at the manager, descriptors
through Rx/Tx rings, poll-mode processing with per-packet simulated
CPU cost, and manager routing of the output.
"""

import pytest

from repro.core import DEFAULT_COSTS, NFManager, NFStatus, PacketAction
from repro.net import Direction, FiveTuple, Packet
from repro.pfcp.builder import build_session_establishment
from repro.sim import MS, Environment
from repro.up import SessionTable, UPFControlPlane, UPFUserPlane

UE_IP = 0x0A3C0001


def build_platform(fast_path=True):
    env = Environment()
    manager = NFManager(env, pool_size=4096)
    table = SessionTable()
    delivered = []
    upf_u = UPFUserPlane(
        env,
        table,
        service_id=2,
        downlink_sink=lambda p, t, a: delivered.append(p),
        fast_path=fast_path,
    )
    upf_c = UPFControlPlane(table, upf_u=upf_u, address=1)
    upf_c.handle(
        build_session_establishment(
            seid=1, sequence=1, ue_ip=UE_IP, upf_address=1,
            ul_teid=0x100, gnb_address=2, dl_teid=0x500,
        )
    )
    manager.register(upf_u)
    upf_u.start()
    manager.start()
    return env, manager, upf_u, delivered


def dl_packet(seq=0, size=128):
    return Packet(
        size=size,
        seq=seq,
        direction=Direction.DOWNLINK,
        flow=FiveTuple(src_ip=1, dst_ip=UE_IP, src_port=80, dst_port=4000),
    )


class TestUPFOnPlatform:
    def test_packets_flow_through_rings(self):
        env, manager, upf_u, delivered = build_platform()
        for seq in range(50):
            assert manager.inject(dl_packet(seq), service_id=2)
        env.run(until=10 * MS)
        assert len(delivered) == 50
        assert [p.seq for p in delivered] == list(range(50))
        assert upf_u.handled == 50
        # All descriptors returned to the pool.
        assert manager.pool.in_use == 0

    @pytest.mark.parametrize("fast_path", [True, False], ids=["dpdk", "kernel"])
    def test_poll_loop_charges_per_packet_cost(self, fast_path):
        """A burst's drain time reflects the calibrated per-packet CPU
        cost of the selected path."""
        env, manager, upf_u, delivered = build_platform(fast_path)
        drain_done = {}

        def watch():
            while upf_u.handled < 200:
                yield env.timeout(10e-6)
            drain_done["at"] = env.now

        env.process(watch())
        for seq in range(200):
            manager.inject(dl_packet(seq, size=1500), service_id=2)
        env.run(until=50 * MS)
        assert len(delivered) == 200
        cpu = 200 * DEFAULT_COSTS.per_packet_cost(fast_path, 1500)
        # The burst cannot drain faster than its total CPU time, and
        # should finish within a small multiple of it.
        assert drain_done["at"] >= cpu
        assert drain_done["at"] <= 3 * cpu + 1 * MS

    def test_frozen_upf_routes_around(self):
        """The manager routes only to RUNNING instances: freezing the
        sole UPF drops new traffic (a frozen *replica* never receives
        traffic while the primary serves — §3.5 semantics)."""
        env, manager, upf_u, delivered = build_platform()
        manager.inject(dl_packet(0), service_id=2)
        env.run(until=5 * MS)
        assert len(delivered) == 1
        upf_u.freeze()
        assert not manager.inject(dl_packet(1), service_id=2)
        assert manager.dropped == 1
        upf_u.unfreeze()
        assert manager.inject(dl_packet(2), service_id=2)
        env.run(until=25 * MS)
        assert len(delivered) == 2

    def test_ring_overflow_drops(self):
        """A burst faster than the NF drains tail-drops at the Rx
        ring; injections all land at one simulated instant, so the NF
        cannot run in between."""
        env, manager, upf_u, delivered = build_platform()
        accepted = sum(
            1
            for seq in range(3000)
            if manager.inject(dl_packet(seq), service_id=2)
        )
        assert accepted == upf_u.rx_ring.capacity
        assert manager.dropped == 3000 - accepted
        env.run(until=50 * MS)
        assert len(delivered) == accepted  # the admitted burst survives

    def test_canary_upf_rollout(self):
        """Two UPF-U instances behind one service id with a 50/50
        split — the canary deployment of §4 on the real data path."""
        env = Environment()
        manager = NFManager(env, pool_size=4096)
        table = SessionTable()
        counts = {}
        instances = []
        for instance_id in (0, 1):
            upf = UPFUserPlane(
                env,
                table,
                service_id=2,
                name=f"upf-u-v{instance_id}",
                instance_id=instance_id,
            )
            upf_c = UPFControlPlane(table, upf_u=upf, address=1)
            manager.register(upf)
            upf.start()
            instances.append(upf)
        UPFControlPlane(table, upf_u=instances[0], address=1).handle(
            build_session_establishment(
                seid=1, sequence=1, ue_ip=UE_IP, upf_address=1,
                ul_teid=0x100, gnb_address=2, dl_teid=0x500,
            )
        )
        manager.set_canary_weights(2, {0: 0.5, 1: 0.5})
        manager.start()
        for seq in range(100):
            manager.inject(dl_packet(seq), service_id=2)
        env.run(until=20 * MS)
        assert instances[0].handled == 50
        assert instances[1].handled == 50
