"""Tests for the seeded random stream helper."""

from repro.sim import StreamRNG


class TestStreamRNG:
    def test_same_name_returns_same_stream(self):
        rng = StreamRNG(1)
        assert rng.stream("a") is rng.stream("a")

    def test_streams_independent_of_creation_order(self):
        first = StreamRNG(7)
        value_a = first.stream("a").random()
        value_b = first.stream("b").random()

        second = StreamRNG(7)
        # Access in the opposite order: values must not change.
        assert second.stream("b").random() == value_b
        assert second.stream("a").random() == value_a

    def test_different_seeds_differ(self):
        assert (
            StreamRNG(1).stream("x").random()
            != StreamRNG(2).stream("x").random()
        )

    def test_different_names_differ(self):
        rng = StreamRNG(3)
        assert rng.stream("x").random() != rng.stream("y").random()

    def test_fork_is_deterministic(self):
        a = StreamRNG(5).fork("child").stream("s").random()
        b = StreamRNG(5).fork("child").stream("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = StreamRNG(5)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()
