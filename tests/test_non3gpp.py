"""Tests for non-3GPP access: N3IWF, EAP-AKA', and the procedures."""

import pytest

from repro.cp import FiveGCore, ProcedureRunner, SystemConfig
from repro.cp.nfs import AUSF, UDM
from repro.net import Direction, FiveTuple, Packet
from repro.ran import N3IWF, RMState, UserEquipment
from repro.ran.n3iwf import ESP_OVERHEAD
from repro.sim import Environment


class TestEapAkaPrime:
    KEY = "465b5ce8b199b49faa5f0a2ee238a6bc"
    NETWORK = "5G:NR:non3gpp"

    def test_challenge_deterministic_and_network_bound(self):
        ausf = AUSF()
        a = ausf.eap_aka_prime_challenge("imsi-1", self.NETWORK, self.KEY)
        b = AUSF().eap_aka_prime_challenge("imsi-1", self.NETWORK, self.KEY)
        assert a == b
        other = AUSF().eap_aka_prime_challenge(
            "imsi-1", "5G:NR:other-net", self.KEY
        )
        # CK'/IK' bind the access network name: different network,
        # different key material.
        assert other.kausf != a.kausf

    def test_confirm_success_and_consumption(self):
        import hashlib

        ausf = AUSF()
        vector = ausf.eap_aka_prime_challenge(
            "imsi-1", self.NETWORK, self.KEY
        )
        response = hashlib.sha256(
            "|".join(
                ["at-res", self.KEY, vector.rand, self.NETWORK]
            ).encode()
        ).hexdigest()[:32]
        kseaf = ausf.eap_aka_prime_confirm(
            "imsi-1", response, self.NETWORK, self.KEY
        )
        assert kseaf is not None
        assert (
            ausf.eap_aka_prime_confirm(
                "imsi-1", response, self.NETWORK, self.KEY
            )
            is None
        )

    def test_confirm_wrong_response(self):
        ausf = AUSF()
        ausf.eap_aka_prime_challenge("imsi-1", self.NETWORK, self.KEY)
        assert (
            ausf.eap_aka_prime_confirm(
                "imsi-1", "bogus", self.NETWORK, self.KEY
            )
            is None
        )

    def test_independent_from_5g_aka(self):
        """EAP and 5G-AKA contexts do not collide for the same SUPI."""
        ausf = AUSF()
        ausf.challenge("imsi-1", self.NETWORK, self.KEY)
        ausf.eap_aka_prime_challenge("imsi-1", self.NETWORK, self.KEY)
        assert "imsi-1" in ausf.pending
        assert "eap:imsi-1" in ausf.pending


class TestN3IWF:
    def _n3iwf_and_ue(self):
        env = Environment()
        n3iwf = N3IWF(env, n3iwf_id=100, address=50, wifi_latency=0.002)
        ue = UserEquipment("imsi-n3-1")
        ue.register(100, "guti")
        return env, n3iwf, ue

    def test_signalling_then_child_sa(self):
        env, n3iwf, ue = self._n3iwf_and_ue()
        signalling = n3iwf.establish_signalling_sa(ue)
        child = n3iwf.establish_child_sa(ue, pdu_session_id=1)
        assert signalling.spi != child.spi
        assert n3iwf.sa_for(ue.supi, None) is signalling
        assert n3iwf.sa_for(ue.supi, 1) is child

    def test_child_sa_requires_signalling(self):
        env, n3iwf, ue = self._n3iwf_and_ue()
        with pytest.raises(RuntimeError):
            n3iwf.establish_child_sa(ue, 1)

    def test_downlink_adds_esp_and_wifi_latency(self):
        env, n3iwf, ue = self._n3iwf_and_ue()
        n3iwf.establish_signalling_sa(ue)
        n3iwf.establish_child_sa(ue, 1)
        packet = Packet(size=200, created_at=env.now)
        n3iwf.receive_downlink(packet, ue)
        env.run()
        assert len(ue.received) == 1
        assert ue.received[0].size == 200 + ESP_OVERHEAD
        assert ue.received[0].latency >= 0.002

    def test_downlink_without_sa_dropped(self):
        env, n3iwf, ue = self._n3iwf_and_ue()
        n3iwf.receive_downlink(Packet(), ue)
        env.run()
        assert n3iwf.dropped == 1
        assert ue.received == []

    def test_release_tears_down_all_sas(self):
        env, n3iwf, ue = self._n3iwf_and_ue()
        n3iwf.establish_signalling_sa(ue)
        n3iwf.establish_child_sa(ue, 1)
        assert n3iwf.release_ue(ue) == 2
        assert n3iwf.sa_for(ue.supi, None) is None
        assert not n3iwf.is_connected(ue)

    def test_uplink_strips_esp(self):
        env, n3iwf, ue = self._n3iwf_and_ue()
        forwarded = []
        n3iwf.send_uplink(
            Packet(size=300 + ESP_OVERHEAD), forwarded.append
        )
        env.run()
        assert forwarded[0].size == 300


class TestNon3gppProcedures:
    def _core(self):
        env = Environment()
        core = FiveGCore(env, SystemConfig.l25gc())
        n3iwf = core.add_n3iwf(100)
        n3iwf.wifi_latency = 0.0  # zeroed for base-RTT style checks
        runner = ProcedureRunner(core)
        ue = core.add_ue("imsi-208930000007001")
        return env, core, runner, ue, n3iwf

    def test_registration_via_n3iwf(self):
        env, core, runner, ue, n3iwf = self._core()
        results = []

        def scenario():
            results.append(
                (yield from runner.register_ue_non3gpp(ue, n3iwf_id=100))
            )

        env.process(scenario())
        env.run()
        assert ue.rm_state is RMState.REGISTERED
        assert ue.serving_gnb_id == 100
        assert n3iwf.sa_for(ue.supi, None) is not None
        assert results[0].event == "registration-non3gpp"

    def test_duplicate_ran_node_id_rejected(self):
        env = Environment()
        core = FiveGCore(env, SystemConfig.l25gc())
        with pytest.raises(ValueError):
            core.add_n3iwf(1)  # collides with gNB 1

    def test_session_and_data_over_ipsec(self):
        env, core, runner, ue, n3iwf = self._core()
        detail = {}

        def scenario():
            yield from runner.register_ue_non3gpp(ue, n3iwf_id=100)
            result = yield from runner.establish_session_non3gpp(ue)
            detail.update(result.detail)

        env.process(scenario())
        env.run()
        assert "child_spi" in detail
        core.inject_downlink(
            Packet(
                direction=Direction.DOWNLINK,
                size=200,
                flow=FiveTuple(src_ip=1, dst_ip=detail["ue_ip"],
                               src_port=80, dst_port=4000),
                created_at=env.now,
            )
        )
        env.run()
        assert len(ue.received) == 1
        assert ue.received[0].meta["esp_spi"] == detail["child_spi"]
        assert ue.received[0].size == 200 + ESP_OVERHEAD

    def test_non3gpp_slower_than_3gpp_registration(self):
        """The WiFi leg + EAP round trips cost more than NR access."""
        env, core, runner, ue, n3iwf = self._core()
        n3iwf.wifi_latency = 0.004
        durations = {}

        def scenario():
            result = yield from runner.register_ue_non3gpp(
                ue, n3iwf_id=100
            )
            durations["non3gpp"] = result.duration
            other = core.add_ue("imsi-208930000007002")
            result = yield from runner.register_ue(other, gnb_id=1)
            durations["3gpp"] = result.duration

        env.process(scenario())
        env.run()
        assert durations["non3gpp"] > durations["3gpp"]
