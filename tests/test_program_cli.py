"""CLI tests for ``python -m repro.analysis.program``."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.program import cli

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FIXTURE = {
    "pkg/__init__.py": "",
    "pkg/up/__init__.py": "",
    "pkg/up/mod.py": """
        class UPF:
            def process(self, pkt):
                return self._helper(pkt)

            def _helper(self, pkt):
                return [pkt]
    """,
    "pkg/sim/__init__.py": "",
    "pkg/sim/engine.py": "from ..up import mod\n",
}

ENTRY = "pkg.up.mod.UPF.process"


@pytest.fixture
def fixture_dir(tmp_path, monkeypatch):
    for relpath, source in sorted(FIXTURE.items()):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    # Keep the repo's committed default budget/baseline out of scope.
    monkeypatch.chdir(tmp_path)
    return tmp_path


def run_cli(args):
    return cli.main(args)


class TestFindingsAndFilters:
    def test_findings_fail_the_run(self, fixture_dir, capsys):
        code = run_cli(["pkg", "--entry", ENTRY])
        out = capsys.readouterr().out
        assert code == 1
        assert "W001" in out and "W004" in out
        assert "call chain:" in out

    def test_select_restricts_codes(self, fixture_dir, capsys):
        code = run_cli(["pkg", "--entry", ENTRY, "--select", "W004"])
        out = capsys.readouterr().out
        assert code == 1
        assert "W004" in out and "W001" not in out

    def test_ignore_drops_codes(self, fixture_dir, capsys):
        code = run_cli(
            ["pkg", "--entry", ENTRY, "--ignore", "W001,W004"]
        )
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_unknown_code_rejected(self, fixture_dir):
        with pytest.raises(SystemExit, match="unknown check code"):
            run_cli(["pkg", "--select", "R001"])


class TestOutputs:
    def test_json_report_carries_chains_and_stats(self, fixture_dir, capsys):
        run_cli(["pkg", "--entry", ENTRY, "--json"])
        data = json.loads(capsys.readouterr().out)
        by_code = {f["code"]: f for f in data["findings"]}
        assert set(by_code) == {"W001", "W004"}
        assert by_code["W001"]["chain"] == [
            "-> pkg.up.mod.UPF.process",
            "-> pkg.up.mod.UPF._helper",
        ]
        assert data["stats"]["functions"] > 0
        assert ENTRY in data["hot_path"]

    def test_github_format_annotates_lines(self, fixture_dir, capsys):
        run_cli(["pkg", "--entry", ENTRY, "--format", "github"])
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=W001::" in out
        # Annotations are one line per finding, no chain spill.
        assert all(
            line.startswith("::error") for line in out.strip().splitlines()
        )

    def test_graph_json_dump(self, fixture_dir, capsys):
        code = run_cli(["pkg", "--graph", "json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        pairs = {(e["caller"], e["callee"]) for e in data["edges"]}
        assert ("pkg.up.mod.UPF.process", "pkg.up.mod.UPF._helper") in pairs

    def test_graph_dot_focused_on_entries(self, fixture_dir, capsys):
        code = run_cli(["pkg", "--graph", "dot", "--graph-focus", ENTRY])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph callgraph {")
        assert '"UPF.process" -> "UPF._helper"' in out


class TestBaselineAndBudget:
    def test_write_then_apply_baseline(self, fixture_dir, capsys):
        assert run_cli(
            ["pkg", "--entry", ENTRY, "--write-baseline", "base.json"]
        ) == 0
        capsys.readouterr()
        code = run_cli(
            ["pkg", "--entry", ENTRY, "--baseline", "base.json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 baselined finding(s) suppressed" in out

    def test_budget_grants_intentional_allocations(self, fixture_dir, capsys):
        (fixture_dir / "budget.json").write_text(json.dumps({
            "version": 1,
            "entry_points": [ENTRY],
            "budgets": {
                "pkg.up.mod.UPF._helper": {
                    "allocations": 1, "reason": "fixture"
                },
            },
        }))
        code = run_cli(
            ["pkg", "--budget", "budget.json", "--select", "W001"]
        )
        assert code == 0

    def test_stale_budget_entry_fails_hard(self, fixture_dir, capsys):
        (fixture_dir / "budget.json").write_text(json.dumps({
            "version": 1,
            "budgets": {
                "pkg.up.mod.UPF.gone": {"allocations": 1, "reason": "x"},
            },
        }))
        code = run_cli(["pkg", "--budget", "budget.json"])
        err = capsys.readouterr().err
        assert code == 2
        assert "stale budget entry" in err
        assert "pkg.up.mod.UPF.gone" in err

    def test_default_config_picked_up_from_cwd(self, fixture_dir, capsys):
        (fixture_dir / cli.DEFAULT_BUDGET_FILE).write_text(json.dumps({
            "version": 1,
            "entry_points": [ENTRY],
            "budgets": {
                "pkg.up.mod.UPF._helper": {
                    "allocations": 1, "reason": "fixture"
                },
            },
        }))
        code = run_cli(["pkg", "--select", "W001"])
        assert code == 0


class TestRepoIntegration:
    def test_repo_tree_runs_clean_with_committed_config(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        code = run_cli([os.path.join("src", "repro"), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["findings"] == []
        assert data["suppressed"] == 1  # sim's baselined races import

    def test_analyzer_is_not_imported_by_runtime_code(self):
        # Acceptance: disabled, the analyzer adds zero import-time cost.
        script = (
            "import sys; import repro.up, repro.cp, repro.sim; "
            "assert not any(m.startswith(('repro.analysis.program', "
            "'repro.analysis.dataflow')) "
            "for m in sys.modules), sorted(sys.modules)"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            env=env,
            cwd=REPO_ROOT,
        )
