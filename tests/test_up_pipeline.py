"""Tests for the user plane: rules, sessions, buffer, UPF-C/UPF-U."""

import pytest

from repro.net import Direction, FiveTuple, Packet
from repro.pfcp import ies as pfcp_ies
from repro.pfcp.builder import (
    build_buffering_update,
    build_forward_update,
    build_path_switch,
    build_session_establishment,
)
from repro.pfcp.messages import SessionDeletionRequest
from repro.sim import Environment
from repro.up import (
    SessionTable,
    SmartBuffer,
    UPFControlPlane,
    UPFSession,
    UPFUserPlane,
    far_from_ie,
    pdr_from_create_ie,
)

UE_IP = 0x0A3C0001
GNB = 0xC0A80201
UPF = 0xC0A80102


def build_upf(env=None, **kwargs):
    env = env or Environment()
    table = SessionTable()
    ul_sink, dl_sink, reports = [], [], []
    upf_u = UPFUserPlane(
        env,
        table,
        uplink_sink=ul_sink.append,
        downlink_sink=lambda packet, teid, address: dl_sink.append(
            (packet, teid, address)
        ),
        **kwargs,
    )
    upf_c = UPFControlPlane(
        table, upf_u=upf_u, address=UPF, send_report=reports.append
    )
    upf_u.notify_cp = upf_c.on_buffered_data
    return env, table, upf_u, upf_c, ul_sink, dl_sink, reports


def establish(upf_c, seid=1, ue_ip=UE_IP, ul_teid=0x100, dl_teid=0x500):
    request = build_session_establishment(
        seid=seid,
        sequence=1,
        ue_ip=ue_ip,
        upf_address=UPF,
        ul_teid=ul_teid,
        gnb_address=GNB,
        dl_teid=dl_teid,
    )
    return upf_c.handle(request)


def dl_packet(ue_ip=UE_IP, seq=None):
    return Packet(
        direction=Direction.DOWNLINK,
        flow=FiveTuple(src_ip=0x08080808, dst_ip=ue_ip, src_port=80,
                       dst_port=4000),
        seq=seq,
    )


def ul_packet(teid=0x100, ue_ip=UE_IP):
    return Packet(
        direction=Direction.UPLINK,
        teid=teid,
        flow=FiveTuple(src_ip=ue_ip, dst_ip=0x08080808, src_port=4000,
                       dst_port=80),
    )


class TestSmartBuffer:
    def test_capacity_default_is_3k(self):
        assert SmartBuffer().capacity == 3000

    def test_push_drain_order(self):
        buffer = SmartBuffer(capacity=10)
        packets = [Packet(seq=i) for i in range(5)]
        for packet in packets:
            assert buffer.push(packet)
        drained = buffer.drain()
        assert [packet.seq for packet in drained] == [0, 1, 2, 3, 4]
        assert buffer.is_empty
        assert buffer.drained_total == 5

    def test_tail_drop(self):
        buffer = SmartBuffer(capacity=2)
        assert buffer.push(Packet())
        assert buffer.push(Packet())
        assert not buffer.push(Packet())
        assert buffer.dropped == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SmartBuffer(capacity=0)


class TestSessionTable:
    def test_dual_key_lookup(self):
        table = SessionTable()
        session = UPFSession(seid=1, ue_ip=UE_IP, ul_teid=0x100)
        table.add(session)
        assert table.by_teid(0x100) is session
        assert table.by_ue_ip(UE_IP) is session
        assert table.by_seid(1) is session

    def test_duplicate_keys_rejected(self):
        table = SessionTable()
        table.add(UPFSession(seid=1, ue_ip=1, ul_teid=10))
        with pytest.raises(ValueError):
            table.add(UPFSession(seid=1, ue_ip=2, ul_teid=11))
        with pytest.raises(ValueError):
            table.add(UPFSession(seid=2, ue_ip=1, ul_teid=11))
        with pytest.raises(ValueError):
            table.add(UPFSession(seid=2, ue_ip=2, ul_teid=10))

    def test_remove_clears_all_keys(self):
        table = SessionTable()
        table.add(UPFSession(seid=1, ue_ip=1, ul_teid=10))
        assert table.remove(1) is not None
        assert table.by_teid(10) is None
        assert table.by_ue_ip(1) is None
        assert table.remove(1) is None


class TestRuleDecoding:
    def test_pdr_from_create_ie(self):
        request = build_session_establishment(
            seid=1, sequence=1, ue_ip=UE_IP, upf_address=UPF,
            ul_teid=0x100, gnb_address=GNB, dl_teid=0x500,
        )
        creates = request.find_all(pfcp_ies.CreatePdrIE)
        ul_pdr = pdr_from_create_ie(creates[0])
        dl_pdr = pdr_from_create_ie(creates[1])
        assert ul_pdr.outer_header_removal
        assert ul_pdr.source_interface == pfcp_ies.ACCESS
        assert dl_pdr.source_interface == pfcp_ies.CORE

    def test_far_from_ie_merging_semantics(self):
        request = build_session_establishment(
            seid=1, sequence=1, ue_ip=UE_IP, upf_address=UPF,
            ul_teid=0x100, gnb_address=GNB, dl_teid=0x500,
        )
        fars = [far_from_ie(ie) for ie in request.find_all(pfcp_ies.CreateFarIE)]
        dl_far = next(far for far in fars if far.far_id == 2)
        assert dl_far.action.outer_teid == 0x500
        assert dl_far.action.outer_address == GNB

    def test_pdr_without_id_raises(self):
        with pytest.raises(ValueError):
            pdr_from_create_ie(pfcp_ies.CreatePdrIE(children=[]))


class TestForwarding:
    def test_uplink_decap_to_dn(self):
        env, table, upf_u, upf_c, ul_sink, dl_sink, _ = build_upf()
        establish(upf_c)
        upf_u.process(ul_packet())
        assert len(ul_sink) == 1
        assert ul_sink[0].teid is None  # outer header removed
        assert upf_u.stats.forwarded_ul == 1

    def test_downlink_encap_to_gnb(self):
        env, table, upf_u, upf_c, ul_sink, dl_sink, _ = build_upf()
        establish(upf_c)
        upf_u.process(dl_packet())
        assert len(dl_sink) == 1
        packet, teid, address = dl_sink[0]
        assert teid == 0x500 and address == GNB
        assert packet.teid == 0x500

    def test_unknown_session_dropped(self):
        env, table, upf_u, upf_c, *_ = build_upf()
        establish(upf_c)
        upf_u.process(dl_packet(ue_ip=0x0A3C0099))
        upf_u.process(ul_packet(teid=0x999))
        assert upf_u.stats.dropped_no_session == 2

    def test_uplink_without_teid_dropped(self):
        env, table, upf_u, upf_c, *_ = build_upf()
        establish(upf_c)
        packet = ul_packet()
        packet.teid = None
        upf_u.process(packet)
        assert upf_u.stats.dropped_no_session == 1

    def test_session_deletion_stops_forwarding(self):
        env, table, upf_u, upf_c, ul_sink, *_ = build_upf()
        establish(upf_c)
        response = upf_c.handle(SessionDeletionRequest(seid=1, sequence=2))
        assert response.find(pfcp_ies.CauseIE).accepted
        upf_u.process(ul_packet())
        assert upf_u.stats.dropped_no_session == 1

    def test_delete_unknown_session(self):
        env, table, upf_u, upf_c, *_ = build_upf()
        response = upf_c.handle(SessionDeletionRequest(seid=42, sequence=1))
        assert not response.find(pfcp_ies.CauseIE).accepted


class TestBufferingFlow:
    def test_buffering_update_buffers_and_notifies_once(self):
        env, table, upf_u, upf_c, _, dl_sink, reports = build_upf()
        establish(upf_c)
        upf_c.handle(build_buffering_update(seid=1, sequence=2, notify_cp=True))
        for seq in range(5):
            upf_u.process(dl_packet(seq=seq))
        session = table.by_seid(1)
        assert len(session.buffer) == 5
        assert len(reports) == 1  # exactly one downlink data report
        assert dl_sink == []

    def test_forward_update_flushes_in_order(self):
        env, table, upf_u, upf_c, _, dl_sink, _ = build_upf()
        establish(upf_c)
        upf_c.handle(build_buffering_update(seid=1, sequence=2, notify_cp=True))
        for seq in range(5):
            upf_u.process(dl_packet(seq=seq))
        upf_c.handle(
            build_forward_update(seid=1, sequence=3, gnb_address=GNB,
                                 dl_teid=0x500)
        )
        assert [p.seq for p, _t, _a in dl_sink] == [0, 1, 2, 3, 4]
        assert table.by_seid(1).buffer.is_empty
        # Drained packets carry their serial re-injection delay.
        delays = [p.meta["extra_delay"] for p, _t, _a in dl_sink]
        assert delays == sorted(delays)

    def test_report_pending_resets_after_flush(self):
        env, table, upf_u, upf_c, _, _, reports = build_upf()
        establish(upf_c)
        upf_c.handle(build_buffering_update(seid=1, sequence=2, notify_cp=True))
        upf_u.process(dl_packet(seq=0))
        upf_c.handle(
            build_forward_update(seid=1, sequence=3, gnb_address=GNB,
                                 dl_teid=0x500)
        )
        upf_c.handle(build_buffering_update(seid=1, sequence=4, notify_cp=True))
        upf_u.process(dl_packet(seq=1))
        assert len(reports) == 2  # a fresh episode notifies again

    def test_choose_teid_allocates(self):
        env, table, upf_u, upf_c, *_ = build_upf()
        establish(upf_c)
        response = upf_c.handle(
            build_buffering_update(
                seid=1, sequence=2, choose_new_teid=True, upf_address=UPF
            )
        )
        allocated = response.find(pfcp_ies.FTeidIE)
        assert allocated is not None
        assert allocated.teid >= 0x1000

    def test_modify_unknown_session_rejected(self):
        env, table, upf_u, upf_c, *_ = build_upf()
        response = upf_c.handle(
            build_buffering_update(seid=77, sequence=1)
        )
        cause = response.find(pfcp_ies.CauseIE)
        assert cause.cause == pfcp_ies.CAUSE_SESSION_NOT_FOUND

    def test_path_switch_redirects(self):
        env, table, upf_u, upf_c, _, dl_sink, _ = build_upf()
        establish(upf_c)
        new_gnb = 0xC0A80202
        upf_c.handle(
            build_path_switch(seid=1, sequence=2, new_gnb_address=new_gnb,
                              new_dl_teid=0x600)
        )
        upf_u.process(dl_packet())
        _, teid, address = dl_sink[0]
        assert (teid, address) == (0x600, new_gnb)

    def test_session_scoped_capacity(self):
        env, table, upf_u, upf_c, *_ = build_upf()
        establish(upf_c, seid=1, ue_ip=UE_IP, ul_teid=0x100)
        establish(upf_c, seid=2, ue_ip=UE_IP + 1, ul_teid=0x101)
        session = table.by_seid(1)
        # Session-scoped (L25GC): full capacity regardless of others.
        assert upf_u._effective_capacity(session) == session.buffer.capacity

    def test_shared_capacity_shrinks_with_sessions(self):
        env, table, upf_u, upf_c, *_ = build_upf(
            session_scoped_buffering=False
        )
        establish(upf_c, seid=1, ue_ip=UE_IP, ul_teid=0x100)
        establish(upf_c, seid=2, ue_ip=UE_IP + 1, ul_teid=0x101)
        session = table.by_seid(1)
        expected = session.buffer.capacity - upf_u.SHARED_BACKLOG_PER_SESSION
        assert upf_u._effective_capacity(session) == expected


class TestMultiSession:
    def test_sessions_isolated(self):
        env, table, upf_u, upf_c, ul_sink, dl_sink, _ = build_upf()
        establish(upf_c, seid=1, ue_ip=UE_IP, ul_teid=0x100, dl_teid=0x500)
        establish(upf_c, seid=2, ue_ip=UE_IP + 1, ul_teid=0x101, dl_teid=0x501)
        # Buffer only session 2.
        upf_c.handle(build_buffering_update(seid=2, sequence=5))
        upf_u.process(dl_packet(ue_ip=UE_IP))
        upf_u.process(dl_packet(ue_ip=UE_IP + 1))
        assert len(dl_sink) == 1  # session 1 still flows
        assert len(table.by_seid(2).buffer) == 1
