"""Tests for the calibrated cost model — the paper's headline ratios."""

import pytest

from repro.core import DEFAULT_COSTS, Channel, CostModel


class TestChannelCosts:
    def test_sbi_speedup_is_about_13x(self):
        """Fig 9: shared memory beats HTTP by ~13x per message."""
        http = DEFAULT_COSTS.message_cost(Channel.HTTP_JSON)
        shm = DEFAULT_COSTS.message_cost(Channel.SHARED_MEMORY)
        assert 11.0 <= http / shm <= 16.0

    def test_serialization_ordering(self):
        """JSON > FlatBuffers/Protobuf > shared memory (zero)."""
        costs = DEFAULT_COSTS
        json_total = costs.serialize_cost(
            Channel.HTTP_JSON
        ) + costs.deserialize_cost(Channel.HTTP_JSON)
        proto_total = costs.serialize_cost(
            Channel.HTTP_PROTOBUF
        ) + costs.deserialize_cost(Channel.HTTP_PROTOBUF)
        flat_total = costs.serialize_cost(
            Channel.HTTP_FLATBUFFERS
        ) + costs.deserialize_cost(Channel.HTTP_FLATBUFFERS)
        shm_total = costs.serialize_cost(
            Channel.SHARED_MEMORY
        ) + costs.deserialize_cost(Channel.SHARED_MEMORY)
        assert json_total > proto_total > shm_total
        assert json_total > flat_total > shm_total
        assert shm_total == 0.0

    def test_flatbuffers_deserialize_near_zero(self):
        """Fig 6: FlatBuffers' decode is almost free; encode is not."""
        costs = DEFAULT_COSTS
        assert costs.flatbuffers_deserialize < costs.flatbuffers_serialize / 5

    def test_optimized_serialization_alone_insufficient(self):
        """Fig 6's argument: even FlatBuffers over kernel sockets costs
        far more than shared memory, because the protocol stack remains."""
        flat = DEFAULT_COSTS.message_cost(Channel.HTTP_FLATBUFFERS)
        shm = DEFAULT_COSTS.message_cost(Channel.SHARED_MEMORY)
        assert flat > 5 * shm

    def test_shared_memory_has_no_copies(self):
        small = DEFAULT_COSTS.protocol_cost(Channel.SHARED_MEMORY, 64)
        large = DEFAULT_COSTS.protocol_cost(Channel.SHARED_MEMORY, 64 << 20)
        assert small == large

    def test_kernel_channels_scale_with_size(self):
        small = DEFAULT_COSTS.protocol_cost(Channel.HTTP_JSON, 64)
        large = DEFAULT_COSTS.protocol_cost(Channel.HTTP_JSON, 1 << 20)
        assert large > small

    def test_pfcp_transport_reduction_moderate(self):
        """Fig 7: PFCP over shm is 21-39% faster including the handler."""
        costs = DEFAULT_COSTS
        handler = 450e-6
        udp = costs.message_cost(Channel.UDP_PFCP) + handler
        shm = costs.message_cost(Channel.SHARED_MEMORY) + handler
        assert 0.15 <= 1 - shm / udp <= 0.45


class TestDataPlane:
    def test_forwarding_ratio_27x_at_68_bytes(self):
        """Fig 10(a): L25GC forwards 27x more 68-byte packets."""
        fast = DEFAULT_COSTS.forwarding_rate_pps(True, 68)
        slow = DEFAULT_COSTS.forwarding_rate_pps(False, 68)
        assert 24.0 <= fast / slow <= 30.0

    def test_l25gc_line_rate_small_packets(self):
        """One core pushes >= 10G line rate at 68 bytes (~14.9 Mpps)."""
        line_rate = 10e9 / (8 * (68 + 24))
        assert DEFAULT_COSTS.forwarding_rate_pps(True, 68) >= line_rate

    def test_mtu_scaling_to_40g(self):
        """§5.3: 1 core ~ 10G at MTU; 4 cores comfortably reach 40G."""
        one = DEFAULT_COSTS.forwarding_rate_pps(True, 1500, 1) * 1500 * 8
        four = DEFAULT_COSTS.forwarding_rate_pps(True, 1500, 4) * 1500 * 8
        assert one >= 10e9
        assert four >= 40e9

    def test_base_rtt_anchors(self):
        """Table 1: base RTT 116 us (free5GC) vs ~25 us (L25GC)."""
        kernel_rtt = 2 * (
            DEFAULT_COSTS.forward_latency(False) + DEFAULT_COSTS.lan_propagation
        )
        dpdk_rtt = 2 * (
            DEFAULT_COSTS.forward_latency(True) + DEFAULT_COSTS.lan_propagation
        )
        assert kernel_rtt == pytest.approx(116e-6, rel=0.05)
        assert dpdk_rtt == pytest.approx(25e-6, rel=0.10)

    def test_latency_ratio_about_15x(self):
        """Conclusion: ~15x latency improvement."""
        ratio = DEFAULT_COSTS.forward_latency(False) / DEFAULT_COSTS.forward_latency(True)
        assert 3.0 <= ratio <= 20.0

    def test_multisession_contention(self):
        """Table 2 expt ii: 4 sessions inflate the kernel base RTT ~3.7x
        but the poll-mode path only ~1.6x."""
        kernel = DEFAULT_COSTS.forward_latency(False, 4) / DEFAULT_COSTS.forward_latency(False, 1)
        dpdk = DEFAULT_COSTS.forward_latency(True, 4) / DEFAULT_COSTS.forward_latency(True, 1)
        assert kernel > dpdk
        assert kernel == pytest.approx(3.7, rel=0.05)
        assert dpdk == pytest.approx(1.6, rel=0.05)

    def test_buffer_reinject_kernel_much_slower(self):
        assert DEFAULT_COSTS.buffer_reinject(False) > 5 * DEFAULT_COSTS.buffer_reinject(True)

    def test_per_packet_cost_monotone_in_size(self):
        for fast in (True, False):
            costs = [
                DEFAULT_COSTS.per_packet_cost(fast, size)
                for size in (64, 128, 512, 1500)
            ]
            assert costs == sorted(costs)

    def test_cached_lookup_cheaper_than_full_pipeline(self):
        """The flow cache swaps the match walk for a single probe."""
        for fast in (True, False):
            for size in (68, 512, 1500):
                cached = DEFAULT_COSTS.cached_lookup(fast, size)
                full = DEFAULT_COSTS.per_packet_cost(fast, size)
                assert 0.0 < cached < full

    def test_cached_savings_larger_on_kernel_path(self):
        """free5GC's kernel match dwarfs the DPDK match, so memoizing
        it buys proportionally more headroom."""
        fast_gain = DEFAULT_COSTS.per_packet_cost(
            True, 256
        ) - DEFAULT_COSTS.cached_lookup(True, 256)
        slow_gain = DEFAULT_COSTS.per_packet_cost(
            False, 256
        ) - DEFAULT_COSTS.cached_lookup(False, 256)
        assert slow_gain > fast_gain > 0.0

    def test_cached_forwarding_rate_exceeds_uncached(self):
        for fast in (True, False):
            assert DEFAULT_COSTS.cached_forwarding_rate_pps(
                fast, 68
            ) > DEFAULT_COSTS.forwarding_rate_pps(fast, 68)

    def test_cached_lookup_floor_is_probe_cost(self):
        """Even if the saved match exceeded the base cost, the probe
        itself is never free."""
        tiny = DEFAULT_COSTS.scaled(dpdk_match_cost=10.0)
        assert tiny.cached_lookup(True, 68) >= tiny.flow_cache_probe

    def test_burst_cost_at_calibrated_size_is_exact(self):
        """The per-packet calibration already bakes in a 32-packet
        burst, so burst=32 must reproduce the headline cost exactly."""
        costs = DEFAULT_COSTS
        assert costs.calibrated_burst_size == 32
        for fast in (True, False):
            assert costs.burst_per_packet_cost(
                fast, 68, costs.calibrated_burst_size
            ) == costs.per_packet_cost(fast, 68)

    def test_burst_cost_monotone_in_burst_size(self):
        costs = DEFAULT_COSTS
        sweep = [
            costs.burst_per_packet_cost(True, 68, burst)
            for burst in (1, 4, 8, 16, 32, 64)
        ]
        assert sweep == sorted(sweep, reverse=True)
        assert sweep[0] > sweep[-1]

    def test_kernel_path_has_no_burst_lever(self):
        """free5GC's interrupt-driven path cannot amortize polls."""
        costs = DEFAULT_COSTS
        assert costs.burst_per_packet_cost(
            False, 68, 1
        ) == costs.burst_per_packet_cost(False, 68, 64)

    def test_burst_size_must_be_positive(self):
        with pytest.raises(ValueError):
            DEFAULT_COSTS.burst_per_packet_cost(True, 68, 0)

    def test_burst_forwarding_rate_consistent(self):
        costs = DEFAULT_COSTS
        rate = costs.burst_forwarding_rate_pps(True, 68, 8, cores=2)
        assert rate == pytest.approx(
            2.0 / costs.burst_per_packet_cost(True, 68, 8)
        )

    def test_oversized_burst_overhead_clamps_to_positive_floor(self):
        """Regression (ISSUE 9): a configured ``dpdk_burst_overhead``
        larger than the calibrated share drives the amortized cost
        negative at ``burst_size > calibrated_burst_size``; the cost
        must clamp to the positive floor instead of letting the rate
        divide by <= 0."""
        costs = DEFAULT_COSTS
        # Large enough that the (1/burst - 1/calibrated) overhead term
        # exceeds the whole per-packet cost at burst 64.
        hostile = costs.scaled(
            dpdk_burst_overhead=1000.0
            * costs.per_packet_cost(True, 68)
            * costs.calibrated_burst_size
        )
        big_burst = costs.calibrated_burst_size * 2
        cost = hostile.burst_per_packet_cost(True, 68, big_burst)
        assert cost == hostile.min_per_packet_cost
        assert cost > 0.0
        rate = hostile.burst_forwarding_rate_pps(True, 68, big_burst)
        assert rate > 0.0
        assert rate == pytest.approx(1.0 / hostile.min_per_packet_cost)

    def test_burst_cost_floor_boundary(self):
        """At the exact overhead where the unclamped cost reaches the
        floor, clamped and unclamped agree; one epsilon above, the
        clamp engages (no discontinuity through zero)."""
        costs = DEFAULT_COSTS
        burst = costs.calibrated_burst_size * 2
        base = costs.per_packet_cost(True, 68)
        # overhead * (1/burst - 1/calibrated) == -(base - floor)
        share = 1.0 / burst - 1.0 / costs.calibrated_burst_size
        exact_overhead = (costs.min_per_packet_cost - base) / share
        at_floor = costs.scaled(dpdk_burst_overhead=exact_overhead)
        assert at_floor.burst_per_packet_cost(
            True, 68, burst
        ) == pytest.approx(at_floor.min_per_packet_cost)
        beyond = costs.scaled(dpdk_burst_overhead=exact_overhead * 2)
        assert beyond.burst_per_packet_cost(
            True, 68, burst
        ) == beyond.min_per_packet_cost


class TestCacheHierarchy:
    def test_hit_rate_curve(self):
        costs = DEFAULT_COSTS
        assert costs.cache_hit_rate(0, 1000) == 1.0
        assert costs.cache_hit_rate(1000, 1000) == 1.0
        assert costs.cache_hit_rate(2000, 1000) == pytest.approx(0.5)
        assert costs.cache_hit_rate(1_000_000, 1000) == pytest.approx(0.001)

    def test_state_latency_monotone_in_sessions(self):
        costs = DEFAULT_COSTS
        sweep = [
            costs.state_access_latency(n)
            for n in (1, 1_000, 100_000, 10_000_000)
        ]
        assert sweep == sorted(sweep)
        assert sweep[-1] > sweep[0]

    def test_hot_layout_cliffs_later_than_dict(self):
        """The LLC overflow point scales with bytes/session: the 64 B
        hot slab holds ~16x more sessions inside LLC than the ~1 KB
        dict layout, so at any count past the dict cliff the hot layout
        is strictly cheaper."""
        costs = DEFAULT_COSTS
        dict_cliff_sessions = costs.llc_size_bytes // costs.cold_session_bytes
        n = dict_cliff_sessions * 4
        assert costs.state_access_latency(
            n, hot_layout=True
        ) < costs.state_access_latency(n, hot_layout=False)
        # Inside L1 both layouts resolve at L1 latency: no delta.
        assert costs.state_access_latency(1, True) == pytest.approx(
            costs.state_access_latency(1, False)
        )

    def test_cache_aware_cost_anchored_at_one_session(self):
        """One resident session reproduces the calibrated per-packet
        cost exactly — the cache term only prices the *delta* from the
        single-session working set the calibration ran with."""
        costs = DEFAULT_COSTS
        for fast in (True, False):
            assert costs.cache_aware_per_packet_cost(
                fast, 68, 1
            ) == pytest.approx(costs.per_packet_cost(fast, 68))

    def test_cache_aware_rate_positive_and_cliffed(self):
        costs = DEFAULT_COSTS
        small = costs.cache_aware_forwarding_rate_pps(True, 68, 100)
        huge = costs.cache_aware_forwarding_rate_pps(True, 68, 10_000_000)
        assert small > huge > 0.0


class TestScaled:
    def test_scaled_overrides(self):
        derived = DEFAULT_COSTS.scaled(radio_sync=0.0)
        assert derived.radio_sync == 0.0
        assert DEFAULT_COSTS.radio_sync > 0.0
        assert derived.handler_processing == DEFAULT_COSTS.handler_processing

    def test_resiliency_anchors(self):
        """§5.5.1: detect < 0.5 ms, reroute 2 ms, replay 3 ms."""
        assert DEFAULT_COSTS.failure_detection < 0.5e-3
        assert DEFAULT_COSTS.reroute == pytest.approx(2e-3)
        assert DEFAULT_COSTS.replay == pytest.approx(3e-3)
        assert DEFAULT_COSTS.local_sync == pytest.approx(5e-6)
