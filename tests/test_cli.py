"""Tests for the experiment CLI runner."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_registry_covers_every_figure(self):
        expected = {
            "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
            "table1", "table2", "smart-buffering", "fig15", "fig16",
            "fig17", "scalability", "shard-scale", "burst",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_one_fast_experiment(self, capsys):
        assert main(["fig09"]) == 0
        out = capsys.readouterr().out
        assert "Fig 9" in out
        assert "average" in out

    def test_run_multiple(self, capsys):
        assert main(["fig07", "smart-buffering"]) == 0
        out = capsys.readouterr().out
        assert "Fig 7" in out and "Eqs 1-2" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
