"""Tests for the SPSC descriptor rings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Ring, RingEmptyError, RingFullError


class TestBasics:
    def test_fifo(self):
        ring = Ring(8)
        for value in range(5):
            ring.enqueue(value)
        assert [ring.dequeue() for _ in range(5)] == list(range(5))

    def test_capacity_rounded_to_power_of_two(self):
        assert Ring(5).capacity == 8
        assert Ring(8).capacity == 8
        assert Ring(1).capacity == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Ring(0)

    def test_full_raises_and_counts(self):
        ring = Ring(2)
        ring.enqueue(1)
        ring.enqueue(2)
        with pytest.raises(RingFullError):
            ring.enqueue(3)
        assert ring.enqueue_failures == 1

    def test_empty_raises(self):
        with pytest.raises(RingEmptyError):
            Ring(4).dequeue()

    def test_len_and_flags(self):
        ring = Ring(4)
        assert ring.is_empty and not ring.is_full
        for value in range(4):
            ring.enqueue(value)
        assert ring.is_full and not ring.is_empty
        assert len(ring) == 4
        assert ring.free_count == 0

    def test_peek(self):
        ring = Ring(4)
        assert ring.peek() is None
        ring.enqueue("x")
        assert ring.peek() == "x"
        assert len(ring) == 1  # peek does not consume

    def test_wraparound(self):
        ring = Ring(4)
        for round_number in range(10):
            ring.enqueue(round_number)
            assert ring.dequeue() == round_number
        assert ring.enqueued == 10
        assert ring.dequeued == 10

    def test_clear(self):
        ring = Ring(4)
        for value in range(3):
            ring.enqueue(value)
        assert ring.clear() == 3
        assert ring.is_empty

    def test_high_watermark(self):
        ring = Ring(8)
        for value in range(6):
            ring.enqueue(value)
        for _ in range(6):
            ring.dequeue()
        assert ring.high_watermark == 6


class TestBurst:
    def test_enqueue_burst_partial(self):
        ring = Ring(4)
        accepted = ring.enqueue_burst(list(range(10)))
        assert accepted == 4
        assert ring.enqueue_failures == 6

    def test_dequeue_burst(self):
        ring = Ring(8)
        ring.enqueue_burst(list(range(5)))
        assert ring.dequeue_burst(3) == [0, 1, 2]
        assert ring.dequeue_burst(10) == [3, 4]
        assert ring.dequeue_burst(1) == []

    @given(st.lists(st.integers(), max_size=100))
    def test_burst_roundtrip_order(self, items):
        ring = Ring(128)
        ring.enqueue_burst(items)
        assert ring.dequeue_burst(len(items)) == items

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=5)),
            max_size=200,
        )
    )
    def test_never_exceeds_capacity(self, operations):
        ring = Ring(8)
        model = []
        for is_enqueue, count in operations:
            if is_enqueue:
                accepted = ring.enqueue_burst(list(range(count)))
                model.extend(range(accepted))
            else:
                got = ring.dequeue_burst(count)
                expected = model[: len(got)]
                del model[: len(got)]
                assert len(got) == len(expected)
            assert 0 <= len(ring) <= ring.capacity
            assert len(ring) == len(model)


class TestEdgeCases:
    @pytest.mark.parametrize(
        "requested,expected",
        [(1, 1), (2, 2), (3, 4), (5, 8), (100, 128), (1000, 1024), (1024, 1024)],
    )
    def test_non_power_of_two_capacity_rounds_up(self, requested, expected):
        ring = Ring(requested)
        assert ring.capacity == expected
        # The rounded capacity is fully usable.
        assert ring.enqueue_burst(list(range(expected + 3))) == expected
        assert ring.is_full

    def test_burst_wraparound_across_index_mask(self):
        """Bursts that straddle the head/tail wrap point keep FIFO order."""
        ring = Ring(8)
        # Advance head/tail near the wrap point, then burst across it.
        ring.enqueue_burst(list(range(6)))
        assert ring.dequeue_burst(6) == list(range(6))
        batch = list(range(100, 108))  # fills all 8 slots, wrapping at 8
        assert ring.enqueue_burst(batch) == 8
        assert ring.is_full
        assert ring.dequeue_burst(8) == batch
        # Many full cycles: indices exceed the mask repeatedly.
        for cycle in range(50):
            values = list(range(cycle * 10, cycle * 10 + 5))
            assert ring.enqueue_burst(values) == 5
            assert ring.dequeue_burst(5) == values
        assert ring.enqueued == 6 + 8 + 250
        assert ring.dequeued == ring.enqueued

    def test_enqueue_failures_on_partial_bursts(self):
        ring = Ring(4)
        assert ring.enqueue_burst(list(range(3))) == 3
        assert ring.enqueue_failures == 0
        assert ring.enqueue_burst(list(range(3))) == 1  # 2 rejected
        assert ring.enqueue_failures == 2
        assert ring.enqueue_burst(list(range(5))) == 0  # full: all rejected
        assert ring.enqueue_failures == 7
        assert ring.enqueued == 4

    def test_peek_then_clear(self):
        ring = Ring(4)
        ring.enqueue("a")
        ring.enqueue("b")
        assert ring.peek() == "a"
        assert ring.clear() == 2
        assert ring.peek() is None
        assert ring.is_empty
        # The ring is immediately reusable after a clear.
        ring.enqueue("c")
        assert ring.peek() == "c"
        assert ring.dequeue() == "c"

    def test_clear_accounts_discards_in_stats(self):
        ring = Ring(8)
        ring.enqueue_burst(list(range(5)))
        ring.dequeue()
        assert ring.clear() == 4
        assert ring.dropped == 4
        stats = ring.stats()
        assert stats["dropped"] == 4
        assert stats["enqueued"] == 5
        assert stats["dequeued"] == 1
        # Ledger invariant: everything enqueued is dequeued, dropped,
        # or still queued.
        assert (
            stats["enqueued"]
            == stats["dequeued"] + stats["dropped"] + stats["occupancy"]
        )
        assert "drop=4" in repr(ring)

    def test_clear_empty_ring_drops_nothing(self):
        ring = Ring(4)
        assert ring.clear() == 0
        assert ring.dropped == 0


class TestDequeueBurstEquivalence:
    """dequeue_burst must be stats-identical to N singleton dequeues."""

    def test_empty_ring(self):
        ring = Ring(8)
        assert ring.dequeue_burst(4) == []
        assert ring.dequeued == 0

    def test_partial_burst(self):
        ring = Ring(8)
        ring.enqueue_burst([1, 2, 3])
        assert ring.dequeue_burst(8) == [1, 2, 3]
        assert ring.dequeued == 3

    def test_burst_larger_than_capacity(self):
        ring = Ring(4)
        ring.enqueue_burst(list(range(4)))
        assert ring.dequeue_burst(100) == list(range(4))
        assert ring.dequeued == 4

    @pytest.mark.parametrize("count", [0, -1, -100])
    def test_non_positive_max_count_pops_nothing(self, count):
        """A negative count must never reach the monotonic counter."""
        ring = Ring(8)
        ring.enqueue_burst([1, 2])
        assert ring.dequeue_burst(count) == []
        assert ring.dequeued == 0
        assert len(ring) == 2

    @given(
        st.lists(st.integers(min_value=0, max_value=6), max_size=50),
    )
    def test_stats_identical_to_singleton_dequeues(self, drain_counts):
        burst_ring, single_ring = Ring(8), Ring(8)
        fill = 0
        for count in drain_counts:
            batch = list(range(fill, fill + 3))
            fill += 3
            burst_ring.enqueue_burst(batch)
            single_ring.enqueue_burst(batch)
            got = burst_ring.dequeue_burst(count)
            singles = [
                single_ring.dequeue() for _ in range(min(count, len(single_ring)))
            ]
            assert got == singles
            assert burst_ring.stats() == single_ring.stats()
