"""Tests for the UE state machine and the gNB model."""

import pytest

from repro.net import Packet
from repro.ran import CMState, GNodeB, PDUSession, RMState, UserEquipment
from repro.ran.ue import StateError
from repro.sim import Environment


class TestUEStateMachine:
    def test_initial_state(self):
        ue = UserEquipment()
        assert ue.rm_state is RMState.DEREGISTERED
        assert ue.cm_state is CMState.IDLE

    def test_register(self):
        ue = UserEquipment()
        ue.register(gnb_id=1, guti="guti-1")
        assert ue.rm_state is RMState.REGISTERED
        assert ue.cm_state is CMState.CONNECTED
        assert ue.serving_gnb_id == 1

    def test_idle_wake_cycle(self):
        ue = UserEquipment()
        ue.register(1, "guti")
        ue.go_idle()
        assert ue.cm_state is CMState.IDLE
        ue.wake()
        assert ue.cm_state is CMState.CONNECTED

    def test_idle_while_deregistered_raises(self):
        with pytest.raises(StateError):
            UserEquipment().go_idle()

    def test_wake_while_deregistered_raises(self):
        with pytest.raises(StateError):
            UserEquipment().wake()

    def test_handover_requires_registration(self):
        with pytest.raises(StateError):
            UserEquipment().hand_over(2)

    def test_handover_moves_serving_gnb(self):
        ue = UserEquipment()
        ue.register(1, "guti")
        ue.hand_over(2)
        assert ue.serving_gnb_id == 2

    def test_session_requires_registration(self):
        with pytest.raises(StateError):
            UserEquipment().add_session(PDUSession(session_id=1))

    def test_session_lookup(self):
        ue = UserEquipment()
        ue.register(1, "guti")
        ue.add_session(PDUSession(session_id=1, ue_ip=5))
        assert ue.session(1).ue_ip == 5
        with pytest.raises(KeyError):
            ue.session(2)

    def test_deregister_clears_sessions(self):
        ue = UserEquipment()
        ue.register(1, "guti")
        ue.add_session(PDUSession(session_id=1))
        ue.deregister()
        assert ue.sessions == {}
        assert ue.rm_state is RMState.DEREGISTERED


class TestGNodeB:
    def _gnb_and_ue(self, **kwargs):
        env = Environment()
        gnb = GNodeB(env, gnb_id=1, address=100, **kwargs)
        ue = UserEquipment()
        ue.register(1, "guti")
        gnb.connect(ue)
        return env, gnb, ue

    def test_direct_delivery(self):
        env, gnb, ue = self._gnb_and_ue(radio_latency=0.001)
        packet = Packet(created_at=env.now)
        gnb.receive_downlink(packet, ue)
        env.run()
        assert len(ue.received) == 1
        assert ue.received[0].latency == pytest.approx(0.001)
        assert gnb.delivered == 1

    def test_buffering_holds_packets(self):
        env, gnb, ue = self._gnb_and_ue()
        gnb.start_buffering(ue)
        for _ in range(5):
            gnb.receive_downlink(Packet(), ue)
        env.run()
        assert ue.received == []
        assert gnb.buffered_count(ue.supi) == 5

    def test_buffer_tail_drop(self):
        """Challenge 2: the gNB's buffer is small; overflow is loss."""
        env, gnb, ue = self._gnb_and_ue(buffer_packets=3)
        gnb.start_buffering(ue)
        for _ in range(10):
            gnb.receive_downlink(Packet(), ue)
        assert gnb.buffered_count(ue.supi) == 3
        assert gnb.dropped == 7

    def test_default_buffer_is_about_2mb(self):
        """~1300 full-MTU packets per radio-connected UE."""
        env = Environment()
        gnb = GNodeB(env, gnb_id=1, address=1)
        assert gnb._buffer_capacity == 1300

    def test_drain_returns_in_order(self):
        env, gnb, ue = self._gnb_and_ue()
        gnb.start_buffering(ue)
        packets = [Packet(seq=i) for i in range(4)]
        for packet in packets:
            gnb.receive_downlink(packet, ue)
        drained = gnb.drain_buffer(ue)
        assert [packet.seq for packet in drained] == [0, 1, 2, 3]
        assert not gnb.is_buffering(ue.supi)

    def test_drain_without_buffering_is_empty(self):
        env, gnb, ue = self._gnb_and_ue()
        assert gnb.drain_buffer(ue) == []

    def test_delivery_to_departed_ue_is_lost(self):
        env, gnb, ue = self._gnb_and_ue(radio_latency=0.001)
        gnb.receive_downlink(Packet(), ue)
        gnb.disconnect(ue)  # UE leaves before the air delivery lands
        env.run()
        assert ue.received == []
        assert gnb.dropped == 1

    def test_teid_allocation_unique(self):
        env, gnb, _ = self._gnb_and_ue()
        teids = {gnb.allocate_dl_teid() for _ in range(100)}
        assert len(teids) == 100

    def test_uplink_forwarding(self):
        env, gnb, ue = self._gnb_and_ue(radio_latency=0.002)
        forwarded = []
        gnb.send_uplink(Packet(seq=9), forwarded.append)
        env.run()
        assert len(forwarded) == 1
        assert env.now == pytest.approx(0.002)
