"""Tests for the 3GPP procedures on the assembled core."""

import pytest

from repro.cp import (
    FiveGCore,
    HOState,
    ProcedureRunner,
    RegistrationState,
    SystemConfig,
)
from repro.net import Direction, FiveTuple, Packet
from repro.ran import CMState, RMState
from repro.sim import Environment


def build(config=None):
    env = Environment()
    core = FiveGCore(env, config or SystemConfig.l25gc())
    runner = ProcedureRunner(core)
    ue = core.add_ue("imsi-208930000000003")
    return env, core, runner, ue


def run_procedures(env, *procedures):
    results = []

    def scenario():
        for procedure in procedures:
            results.append((yield from procedure))

    env.process(scenario())
    env.run()
    return results


class TestRegistration:
    def test_states_after_registration(self):
        env, core, runner, ue = build()
        (result,) = run_procedures(env, runner.register_ue(ue, gnb_id=1))
        assert ue.rm_state is RMState.REGISTERED
        assert ue.cm_state is CMState.CONNECTED
        assert ue.guti is not None
        amf_ctx = core.amf.context(ue.supi)
        assert amf_ctx.state is RegistrationState.REGISTERED
        assert amf_ctx.serving_gnb_id == 1
        assert result.event == "registration"
        assert result.duration > 0

    def test_policy_created(self):
        env, core, runner, ue = build()
        run_procedures(env, runner.register_ue(ue))
        assert ue.supi in core.pcf.am_policies

    def test_messages_counted(self):
        env, core, runner, ue = build()
        (result,) = run_procedures(env, runner.register_ue(ue))
        assert result.messages == core.bus.total_messages()
        assert result.messages >= 20  # auth + security + policy + accept


class TestSessionEstablishment:
    def test_session_state(self):
        env, core, runner, ue = build()
        results = run_procedures(
            env, runner.register_ue(ue), runner.establish_session(ue)
        )
        session_result = results[1]
        detail = session_result.detail
        assert detail["ue_ip"] != 0
        # The UPF has the session installed under both keys.
        session = core.sessions.by_seid(detail["seid"])
        assert session is not None
        assert core.sessions.by_teid(detail["ul_teid"]) is session
        assert core.sessions.by_ue_ip(detail["ue_ip"]) is session
        # And the UE knows its session.
        assert ue.session(1).ue_ip == detail["ue_ip"]

    def test_data_flows_after_establishment(self):
        env, core, runner, ue = build()
        results = run_procedures(
            env, runner.register_ue(ue), runner.establish_session(ue)
        )
        detail = results[1].detail
        core.inject_downlink(
            Packet(
                direction=Direction.DOWNLINK,
                flow=FiveTuple(src_ip=0x08080808, dst_ip=detail["ue_ip"],
                               src_port=80, dst_port=4000),
                created_at=env.now,
            )
        )
        core.inject_uplink(
            Packet(teid=detail["ul_teid"],
                   flow=FiveTuple(src_ip=detail["ue_ip"], dst_ip=0x08080808,
                                  src_port=4000, dst_port=80))
        )
        env.run()
        assert len(ue.received) == 1
        assert len(core.dn_received) == 1

    def test_unique_ue_ips(self):
        env = Environment()
        core = FiveGCore(env, SystemConfig.l25gc())
        runner = ProcedureRunner(core)
        ues = [core.add_ue(f"imsi-20893000000000{i}") for i in range(2)]
        ips = []

        def lifecycle(ue):
            yield from runner.register_ue(ue)
            result = yield from runner.establish_session(ue)
            ips.append(result.detail["ue_ip"])

        for ue in ues:
            env.process(lifecycle(ue))
        env.run()
        assert len(set(ips)) == 2


class TestIdleAndPaging:
    def _idle_ue(self, config=None):
        env, core, runner, ue = build(config)
        run_procedures(
            env,
            runner.register_ue(ue),
            runner.establish_session(ue),
            runner.release_to_idle(ue),
        )
        return env, core, runner, ue

    def test_idle_buffers_downlink(self):
        env, core, runner, ue = self._idle_ue()
        assert ue.cm_state is CMState.IDLE
        session = core.sessions.sessions()[0]
        core.inject_downlink(
            Packet(
                direction=Direction.DOWNLINK,
                flow=FiveTuple(src_ip=0x08080808,
                               dst_ip=session.ue_ip,
                               src_port=80, dst_port=4000),
                created_at=env.now,
            )
        )
        assert len(session.buffer) == 1
        assert ue.received == []

    def test_report_triggers_paging_hook(self):
        env, core, runner, ue = self._idle_ue()
        session = core.sessions.sessions()[0]
        reports = []
        core.on_report = reports.append
        core.inject_downlink(
            Packet(direction=Direction.DOWNLINK,
                   flow=FiveTuple(src_ip=1, dst_ip=session.ue_ip),
                   created_at=env.now)
        )
        env.run()
        assert len(reports) == 1
        assert reports[0].seid == session.seid

    def test_paging_wakes_and_drains(self):
        env, core, runner, ue = self._idle_ue()
        session = core.sessions.sessions()[0]

        def on_report(report):
            def page():
                yield from runner.page_ue(ue)

            env.process(page())

        core.on_report = on_report
        packet = Packet(
            direction=Direction.DOWNLINK,
            flow=FiveTuple(src_ip=1, dst_ip=session.ue_ip,
                           src_port=80, dst_port=4000),
            created_at=env.now,
        )
        core.inject_downlink(packet)
        env.run()
        assert ue.cm_state is CMState.CONNECTED
        assert len(ue.received) == 1
        assert session.buffer.is_empty


class TestHandover:
    def _connected_ue(self, config=None):
        env, core, runner, ue = build(config)
        run_procedures(
            env, runner.register_ue(ue), runner.establish_session(ue)
        )
        return env, core, runner, ue

    def test_handover_moves_ue_and_path(self):
        env, core, runner, ue = self._connected_ue()
        (result,) = run_procedures(env, runner.handover(ue, target_gnb_id=2))
        assert ue.serving_gnb_id == 2
        assert core.gnbs[2].is_connected(ue)
        assert not core.gnbs[1].is_connected(ue)
        sm = core.smf.context_for(ue.supi, 1)
        assert sm.ho_state is HOState.COMPLETED
        assert sm.gnb_address == core.gnbs[2].address
        assert sm.dl_teid == result.detail["target_dl_teid"]

    def test_data_follows_to_target(self):
        env, core, runner, ue = self._connected_ue()
        run_procedures(env, runner.handover(ue, target_gnb_id=2))
        session = core.sessions.sessions()[0]
        core.inject_downlink(
            Packet(direction=Direction.DOWNLINK,
                   flow=FiveTuple(src_ip=1, dst_ip=session.ue_ip,
                                  src_port=80, dst_port=4000),
                   created_at=env.now)
        )
        env.run()
        assert core.gnbs[2].delivered == 1
        assert core.gnbs[1].delivered == 0

    def test_smart_buffering_holds_during_handover(self):
        """L25GC: DL packets arriving mid-handover are buffered at the
        UPF and delivered, in order, after the path switch."""
        env, core, runner, ue = self._connected_ue()
        session = core.sessions.sessions()[0]
        sequences = []

        def traffic():
            for seq in range(30):
                core.inject_downlink(
                    Packet(direction=Direction.DOWNLINK, seq=seq,
                           flow=FiveTuple(src_ip=1, dst_ip=session.ue_ip,
                                          src_port=80, dst_port=4000),
                           created_at=env.now)
                )
                yield env.timeout(0.01)

        def do_handover():
            yield env.timeout(0.05)
            yield from runner.handover(ue, target_gnb_id=2)

        env.process(traffic())
        env.process(do_handover())
        env.run()
        received = [packet.seq for packet in ue.received]
        assert received == sorted(received)  # in-order delivery (§3.3)
        assert len(received) == 30  # nothing lost
        assert core.upf_u.stats.buffered > 0

    def test_3gpp_mode_buffers_at_source_gnb(self):
        """With smart buffering off, the source gNB buffers and the
        drained packets hairpin back through the UPF."""
        config = SystemConfig.l25gc()
        config.smart_handover_buffering = False
        config.name = "l25gc-no-smart"
        env, core, runner, ue = self._connected_ue(config)
        session = core.sessions.sessions()[0]

        def traffic():
            for seq in range(30):
                core.inject_downlink(
                    Packet(direction=Direction.DOWNLINK, seq=seq,
                           flow=FiveTuple(src_ip=1, dst_ip=session.ue_ip,
                                          src_port=80, dst_port=4000),
                           created_at=env.now)
                )
                yield env.timeout(0.01)

        results = []

        def do_handover():
            yield env.timeout(0.05)
            results.append(
                (yield from runner.handover(ue, target_gnb_id=2))
            )

        env.process(traffic())
        env.process(do_handover())
        env.run()
        assert results[0].detail["hairpinned"] > 0
        assert core.upf_u.stats.buffered == 0  # UPF did not buffer


class TestAcrossSystems:
    @pytest.mark.parametrize(
        "factory", [SystemConfig.free5gc, SystemConfig.onvm_upf,
                    SystemConfig.l25gc],
        ids=["free5gc", "onvm-upf", "l25gc"],
    )
    def test_full_lifecycle_all_systems(self, factory):
        """The same 3GPP sequences complete on every system."""
        env, core, runner, ue = build(factory())
        results = run_procedures(
            env,
            runner.register_ue(ue),
            runner.establish_session(ue),
            runner.handover(ue, target_gnb_id=2),
            runner.release_to_idle(ue),
            runner.page_ue(ue),
        )
        events = [result.event for result in results]
        assert events == [
            "registration", "session-request", "handover",
            "an-release", "paging",
        ]
        assert ue.cm_state is CMState.CONNECTED
        assert ue.serving_gnb_id == 2

    def test_message_sequences_identical_across_systems(self):
        """3GPP compliance: the *names* of exchanged messages match
        between free5GC and L25GC; only channels differ."""

        def trace(factory):
            env, core, runner, ue = build(factory())
            run_procedures(
                env, runner.register_ue(ue), runner.establish_session(ue)
            )
            return [record.name for record in core.bus.log]

        assert trace(SystemConfig.free5gc) == trace(SystemConfig.l25gc)
