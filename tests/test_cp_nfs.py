"""Tests for the control-plane NFs and contexts."""

import pytest

from repro.cp import (
    AMF,
    AUSF,
    HOState,
    NRF,
    PCF,
    RegistrationState,
    SMContext,
    SMF,
    UDM,
    UEContext,
)


class TestContexts:
    def test_ue_context_snapshot_roundtrip(self):
        ctx = UEContext(supi="imsi-1")
        ctx.state = RegistrationState.REGISTERED
        ctx.guti = "guti-1"
        ctx.version = 7
        restored = UEContext.restore(ctx.snapshot())
        assert restored == ctx

    def test_sm_context_snapshot_roundtrip(self):
        ctx = SMContext(supi="imsi-1", pdu_session_id=1, seid=5)
        ctx.ho_state = HOState.PREPARED
        ctx.target_dl_teid = 77
        restored = SMContext.restore(ctx.snapshot())
        assert restored == ctx

    def test_commit_handover_promotes_target(self):
        ctx = SMContext(supi="imsi-1", pdu_session_id=1)
        ctx.gnb_address = 1
        ctx.dl_teid = 10
        ctx.target_gnb_address = 2
        ctx.target_dl_teid = 20
        ctx.ho_state = HOState.PREPARED
        ctx.commit_handover()
        assert ctx.gnb_address == 2 and ctx.dl_teid == 20
        assert ctx.ho_state is HOState.COMPLETED
        assert ctx.target_dl_teid == 0

    def test_commit_without_preparation_raises(self):
        ctx = SMContext(supi="imsi-1", pdu_session_id=1)
        with pytest.raises(RuntimeError):
            ctx.commit_handover()

    def test_version_bump(self):
        ctx = UEContext(supi="imsi-1")
        ctx.bump()
        ctx.bump()
        assert ctx.version == 2


class TestAMF:
    def test_registration_flow(self):
        amf = AMF()
        amf.begin_authentication("imsi-1")
        assert amf.context("imsi-1").state is RegistrationState.AUTHENTICATING
        amf.complete_security("imsi-1", "kseaf")
        guti = amf.complete_registration("imsi-1", gnb_id=2)
        ctx = amf.context("imsi-1")
        assert ctx.state is RegistrationState.REGISTERED
        assert ctx.guti == guti
        assert ctx.serving_gnb_id == 2
        assert ctx.cm_connected

    def test_gutis_unique(self):
        amf = AMF()
        gutis = {
            amf.complete_registration(f"imsi-{i}", 1) for i in range(10)
        }
        assert len(gutis) == 10

    def test_connection_release_resume(self):
        amf = AMF()
        amf.complete_registration("imsi-1", 1)
        amf.release_connection("imsi-1")
        assert not amf.context("imsi-1").cm_connected
        amf.resume_connection("imsi-1")
        assert amf.context("imsi-1").cm_connected

    def test_snapshot_restore(self):
        amf = AMF()
        amf.complete_registration("imsi-1", 1)
        amf.complete_registration("imsi-2", 2)
        clone = AMF()
        clone.restore(amf.snapshot())
        assert clone.context("imsi-1").serving_gnb_id == 1
        assert clone.context("imsi-2").serving_gnb_id == 2


class TestSMF:
    def test_seids_unique(self):
        smf = SMF()
        seids = {smf.create_sm_context(f"imsi-{i}", 1).seid for i in range(5)}
        assert len(seids) == 5

    def test_context_for(self):
        smf = SMF()
        created = smf.create_sm_context("imsi-1", pdu_session_id=3)
        assert smf.context_for("imsi-1", 3) is created
        with pytest.raises(KeyError):
            smf.context_for("imsi-1", 9)

    def test_snapshot_restore(self):
        smf = SMF()
        ctx = smf.create_sm_context("imsi-1", 1)
        ctx.ue_ip = 0x0A3C0001
        clone = SMF()
        clone.restore(smf.snapshot())
        assert clone.context_for("imsi-1", 1).ue_ip == 0x0A3C0001


class TestAUSF:
    KEY = "465b5ce8b199b49faa5f0a2ee238a6bc"
    NETWORK = "5G:mnc093.mcc208.3gppnetwork.org"

    def test_challenge_deterministic(self):
        a = AUSF().challenge("imsi-1", self.NETWORK, self.KEY)
        b = AUSF().challenge("imsi-1", self.NETWORK, self.KEY)
        assert a == b

    def test_different_keys_different_vectors(self):
        ausf = AUSF()
        a = ausf.challenge("imsi-1", self.NETWORK, self.KEY)
        b = ausf.challenge("imsi-2", self.NETWORK, "00" * 16)
        assert a.rand != b.rand or a.autn != b.autn

    def test_confirm_success(self):
        import hashlib

        ausf = AUSF()
        vector = ausf.challenge("imsi-1", self.NETWORK, self.KEY)
        # The UE-side derivation mirrors the AUSF's.
        res_star = hashlib.sha256(
            "|".join(["xres*", self.KEY, vector.rand, self.NETWORK]).encode()
        ).hexdigest()[:32]
        kseaf = ausf.confirm("imsi-1", res_star, self.KEY)
        assert kseaf is not None
        # The pending context is consumed.
        assert ausf.confirm("imsi-1", res_star, self.KEY) is None

    def test_confirm_wrong_res_fails(self):
        ausf = AUSF()
        ausf.challenge("imsi-1", self.NETWORK, self.KEY)
        assert ausf.confirm("imsi-1", "00" * 16, self.KEY) is None


class TestUDM:
    def test_provision_and_key(self):
        udm = UDM()
        udm.provision("imsi-1", key="aa" * 16)
        assert udm.subscriber_key("imsi-1") == "aa" * 16

    def test_unknown_subscriber_raises(self):
        with pytest.raises(KeyError):
            UDM().subscriber_key("imsi-404")

    def test_suci_deconcealment(self):
        udm = UDM()
        suci = "suci-0-208-93-0000-0-0-0000000003"
        assert udm.deconceal_suci(suci) == "imsi-208930000000003"

    def test_non_suci_passthrough(self):
        assert UDM().deconceal_suci("imsi-1") == "imsi-1"

    def test_subscription_data(self):
        udm = UDM()
        udm.provision("imsi-1")
        assert "subscribedUeAmbr" in udm.subscription_data("imsi-1", "am_data")


class TestPCFAndNRF:
    def test_policies_unique(self):
        pcf = PCF()
        am = pcf.create_am_policy("imsi-1")
        sm = pcf.create_sm_policy("imsi-1", 1)
        assert am != sm
        assert pcf.am_policies["imsi-1"]["id"] == am

    def test_nrf_discovery(self):
        nrf = NRF()
        nrf.register_nf("SMF", "smf-1", "127.0.0.2")
        nrf.register_nf("AMF", "amf-1", "127.0.0.3")
        found = nrf.discover("SMF")
        assert len(found) == 1
        assert found[0]["nfInstanceId"] == "smf-1"
        assert nrf.discoveries == 1

    def test_nrf_discovery_empty(self):
        assert NRF().discover("UPF") == []
