"""Property-based equivalence of the three classifiers.

The linear scan is the 3GPP-specified reference; TSS and PartitionSort
must return a rule of the *same priority* for every key (rule ids may
differ only when two rules tie, which the generators preclude by using
unique priorities).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifier import (
    ClassBenchGenerator,
    LinearClassifier,
    PartitionSortClassifier,
    Rule,
    TupleSpaceClassifier,
    PDI_FIELDS,
    exact,
    prefix,
    wildcard,
)

_FIELD_INDEX = {spec.name: i for i, spec in enumerate(PDI_FIELDS)}


@st.composite
def prefix_rules(draw, max_rules=30):
    """Random rule lists with prefix-expressible ranges and unique
    priorities, plus keys biased to hit them."""
    count = draw(st.integers(min_value=1, max_value=max_rules))
    rules = []
    for index in range(count):
        ranges = []
        for spec in PDI_FIELDS:
            mode = draw(st.sampled_from(["wild", "exact", "prefix"]))
            if mode == "wild":
                ranges.append(wildcard(spec))
            elif mode == "exact":
                ranges.append(
                    exact(draw(st.integers(0, spec.max_value)))
                )
            else:
                length = draw(st.integers(0, spec.bits))
                ranges.append(
                    prefix(spec, draw(st.integers(0, spec.max_value)), length)
                )
        rules.append(
            Rule(ranges=tuple(ranges), priority=index + 1, rule_id=index + 1)
        )
    keys = []
    for _ in range(10):
        rule = draw(st.sampled_from(rules))
        keys.append(
            tuple(
                draw(st.integers(low, high)) for low, high in rule.ranges
            )
        )
    return rules, keys


@settings(max_examples=40, deadline=None)
@given(prefix_rules())
def test_equivalence_on_random_rules(data):
    rules, keys = data
    linear = LinearClassifier()
    tss = TupleSpaceClassifier()
    partition = PartitionSortClassifier()
    for classifier in (linear, tss, partition):
        classifier.extend(rules)
    for key in keys:
        expected = linear.lookup(key)
        got_tss = tss.lookup(key)
        got_ps = partition.lookup(key)
        assert expected is not None
        assert got_tss is not None and got_tss.priority == expected.priority
        assert got_ps is not None and got_ps.priority == expected.priority


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    prefix_rules(max_rules=15),
)
def test_equivalence_on_random_misses(probe_ip, data):
    """Uniform random keys must agree too (usually misses)."""
    rules, _ = data
    linear = LinearClassifier()
    tss = TupleSpaceClassifier()
    partition = PartitionSortClassifier()
    for classifier in (linear, tss, partition):
        classifier.extend(rules)
    key = Rule.key_from_fields(src_ip=probe_ip, dst_ip=probe_ip ^ 0x5A5A5A5A)
    expected = linear.lookup(key)
    for other in (tss, partition):
        got = other.lookup(key)
        if expected is None:
            assert got is None
        else:
            assert got is not None and got.priority == expected.priority


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=10_000),
    st.sampled_from(["mixed", "best", "worst"]),
)
def test_equivalence_on_classbench(seed, profile):
    generator = ClassBenchGenerator(seed=seed, profile=profile)
    rules = generator.rules(60)
    keys = generator.matching_keys(rules, 30) + generator.random_keys(10)
    linear = LinearClassifier()
    tss = TupleSpaceClassifier()
    partition = PartitionSortClassifier()
    for classifier in (linear, tss, partition):
        classifier.extend(rules)
    for key in keys:
        expected = linear.lookup(key)
        for other in (tss, partition):
            got = other.lookup(key)
            if expected is None:
                assert got is None
            else:
                assert got is not None
                assert got.priority == expected.priority


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=1000), st.data())
def test_equivalence_survives_removals(seed, data):
    """After removing a random subset, all three still agree."""
    generator = ClassBenchGenerator(seed=seed)
    rules = generator.rules(40)
    to_remove = data.draw(
        st.lists(st.sampled_from(rules), max_size=20, unique_by=id)
    )
    keys = generator.matching_keys(rules, 20)
    linear = LinearClassifier()
    tss = TupleSpaceClassifier()
    partition = PartitionSortClassifier()
    for classifier in (linear, tss, partition):
        classifier.extend(rules)
        for rule in to_remove:
            assert classifier.remove(rule)
    for key in keys:
        expected = linear.lookup(key)
        for other in (tss, partition):
            got = other.lookup(key)
            if expected is None:
                assert got is None
            else:
                assert got is not None
                assert got.priority == expected.priority
